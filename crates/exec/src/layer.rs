//! The layer-level execution kernels: batched thread-parallel Winograd
//! convolution and the thread-parallel spatial fallback.
//!
//! ## Parallel decomposition
//!
//! The Winograd path runs as a three-phase pipeline over *tile panels*
//! (contiguous groups of [`PANEL_TILES`](crate::gemm::PANEL_TILES)
//! tiles in global `(image, tile-row, tile-col)` order):
//!
//! 1. **Pack** — one work item per panel: gather and transform every
//!    input tile of the panel, scattering the results into a
//!    coordinate-major `U` panel (`u[e][c][tile]`, contiguous per
//!    coordinate) — the packed right-hand side of the multiply.
//! 2. **Multiply** — one work item per `(coordinate, panel)` pair, in
//!    coordinate-major order: the transform-domain product
//!    `M_e = V_e · U_e` runs through the packed, register-tiled,
//!    `KC`-blocked GEMM micro-kernel of [`crate::gemm`] against the
//!    kernel bank that [`PreparedWinograd::new`] packed once. Items are
//!    chunked coordinate-major across threads, so one thread sweeps
//!    tile panels of a coordinate before moving to the next — the
//!    two-level (coordinate × panel) decomposition that scales past
//!    one core without splitting any accumulation.
//! 3. **Inverse** — one work item per `(image, tile-row)` pair:
//!    gather each tile's `n²` products, inverse-transform, and emit the
//!    finished output rows.
//!
//! The spatial path keeps its one-item-per-`(image, kernel)`-plane
//! decomposition.
//!
//! Items are distributed over `std::thread::scope` workers in fixed
//! contiguous chunks (no work stealing), every item is computed
//! entirely independently, and every output element accumulates its
//! channels in one fixed order inside a single GEMM item — so the
//! output is **bitwise identical for any thread count**, a property
//! the tests pin.

use crate::gemm::{gemm_packed_a, pack_a, MR, PANEL_TILES};
use crate::{EnginePlan, LayerPlan};
use wino_core::{TransformError, TransformSet, WinogradParams};
use wino_obs::Span;
use wino_tensor::{Scalar, Shape4, Tensor4};

/// Execution-engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    /// Worker threads to fan layer execution across (min 1).
    pub threads: usize,
}

impl Default for ExecConfig {
    /// One worker per available hardware thread.
    fn default() -> ExecConfig {
        ExecConfig { threads: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }
    }
}

impl ExecConfig {
    /// A configuration with exactly `threads` workers (clamped to ≥ 1).
    pub fn with_threads(threads: usize) -> ExecConfig {
        ExecConfig { threads: threads.max(1) }
    }
}

/// Runs `items.len()` independent jobs across `threads` scoped workers
/// in deterministic contiguous chunks, returning results in item order.
///
/// `label` names the phase for observability: each *spawned* worker
/// wraps its chunk in an `"exec.worker"` span (per-thread self-time for
/// the profile tree). The inline single-thread path opens no span —
/// its time already belongs to the caller's enclosing phase span, and
/// a nested worker span would steal that span's self-time.
pub(crate) fn run_chunked<T: Send, F: Fn(usize) -> T + Sync>(
    total: usize,
    threads: usize,
    label: &'static str,
    job: F,
) -> Vec<T> {
    let threads = threads.clamp(1, total.max(1));
    if threads == 1 {
        return (0..total).map(job).collect();
    }
    let chunk = total.div_ceil(threads);
    let mut out: Vec<Option<T>> = (0..total).map(|_| None).collect();
    std::thread::scope(|scope| {
        let job = &job;
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = t * chunk;
            let hi = ((t + 1) * chunk).min(total);
            if lo >= hi {
                break;
            }
            handles.push((
                lo,
                scope.spawn(move || {
                    let _worker = Span::enter("exec.worker", label);
                    (lo..hi).map(job).collect::<Vec<T>>()
                }),
            ));
        }
        for (lo, handle) in handles {
            for (offset, value) in
                handle.join().expect("exec worker panicked").into_iter().enumerate()
            {
                out[lo + offset] = Some(value);
            }
        }
    });
    out.into_iter().map(|v| v.expect("every item computed")).collect()
}

/// Shared, read-only state of one Winograd layer execution, generic
/// over the datapath scalar (`f32` for the paper's precision, `Fixed`
/// for the quantization study — every arithmetic op below goes through
/// the [`Scalar`] trait, so a fixed-point instantiation saturates
/// exactly where a DSP block would).
struct WinoCtx<'a, T: Scalar> {
    real: &'a wino_core::RealTransforms<T>,
    input: &'a [T],
    in_shape: Shape4,
    /// Transform-domain kernel bank, coordinate-major and pre-packed
    /// into `MR`-row GEMM micro-panels: slab `e` (of `v_slab` elements)
    /// is `pack_a` of `V_e[k][c]`.
    v_pack: &'a [T],
    /// Length of one packed per-coordinate slab.
    v_slab: usize,
    /// Flattened per-coordinate data-transform terms (see
    /// [`PreparedWinograd`]).
    data_terms: &'a [Vec<(T, usize)>],
    k: usize,
    c: usize,
    m: usize,
    n2: usize,
    pad: isize,
    out_h: usize,
    out_w: usize,
    tiles_x: usize,
    tiles_y: usize,
    /// Tiles across the whole batch: `N · tiles_y · tiles_x`.
    total_tiles: usize,
}

impl<T: Scalar> WinoCtx<'_, T> {
    /// Tiles in panel `p` (the last panel may be ragged).
    fn panel_len(&self, p: usize) -> usize {
        PANEL_TILES.min(self.total_tiles - p * PANEL_TILES)
    }

    /// Phase 1 — one item per tile panel: gathers and data-transforms
    /// every tile of panel `p` into a packed coordinate-major `U`
    /// panel, `u[(e·C + c)·np + tp]` with `tp` the within-panel tile
    /// index — each coordinate's `C × np` slice is exactly the `B`
    /// operand of one GEMM.
    ///
    /// Tiles are gathered structure-of-arrays (`dg[a·n + b][tp]`), so
    /// the flattened data transform runs as a handful of
    /// coefficient-times-row vector operations across the whole panel
    /// instead of one scalar matrix sandwich per tile.
    fn pack_panel(&self, p: usize) -> Vec<T> {
        let (m, n2, c_in) = (self.m, self.n2, self.c);
        let n = self.real.params().input_tile();
        let np = self.panel_len(p);
        let plane_stride = self.in_shape.h * self.in_shape.w;
        let tiles_per_image = self.tiles_y * self.tiles_x;

        // Global tile index -> (image, top-row, left-col) of its input
        // window, hoisted out of the channel loop.
        let coords: Vec<(usize, isize, isize)> = (0..np)
            .map(|tp| {
                let t = p * PANEL_TILES + tp;
                let (img, rem) = (t / tiles_per_image, t % tiles_per_image);
                let (ty, tx) = (rem / self.tiles_x, rem % self.tiles_x);
                (img, (ty * m) as isize - self.pad, (tx * m) as isize - self.pad)
            })
            .collect();

        let (in_h, in_w) = (self.in_shape.h, self.in_shape.w);
        // Tile windows of the panel, structure-of-arrays: dg[ab][tp].
        let mut dg = vec![T::zero(); n2 * np];
        let mut panel = vec![T::zero(); n2 * c_in * np];
        for c in 0..c_in {
            for (tp, &(img, top, left)) in coords.iter().enumerate() {
                let plane = &self.input[(img * c_in + c) * plane_stride..][..plane_stride];
                if top >= 0 && left >= 0 && top as usize + n <= in_h && left as usize + n <= in_w {
                    // Interior tile (the common case): n contiguous
                    // source rows, no per-element bounds logic.
                    let (t0, l0) = (top as usize, left as usize);
                    for r in 0..n {
                        let src = &plane[(t0 + r) * in_w + l0..][..n];
                        for (col, &v) in src.iter().enumerate() {
                            dg[(n * r + col) * np + tp] = v;
                        }
                    }
                } else {
                    for r in 0..n {
                        let rr = top + r as isize;
                        let row_ok = rr >= 0 && (rr as usize) < in_h;
                        for col in 0..n {
                            let cc = left + col as isize;
                            dg[(n * r + col) * np + tp] =
                                if row_ok && cc >= 0 && (cc as usize) < in_w {
                                    plane[rr as usize * in_w + cc as usize]
                                } else {
                                    T::zero()
                                };
                        }
                    }
                }
            }
            // Flattened transform, vectorized across the panel: for
            // each coordinate, a fixed-order sparse sum of scaled
            // window rows. Every tile sees the identical term order,
            // so the result does not depend on panel or thread counts.
            for (e, terms) in self.data_terms.iter().enumerate() {
                let dst = &mut panel[(e * c_in + c) * np..(e * c_in + c) * np + np];
                for &(coef, ab) in terms {
                    let src = &dg[ab * np..ab * np + np];
                    for (o, &s) in dst.iter_mut().zip(src) {
                        *o += coef * s;
                    }
                }
            }
        }
        panel
    }

    /// Phase 2 — one item per `(coordinate, panel)` pair: the
    /// transform-domain multiply `M_e[k][tp] = Σ_c V_e[k][c] · U_e[c][tp]`
    /// for panel `p`, run through the packed GEMM micro-kernel against
    /// the pre-packed kernel slab. Channels accumulate in fixed
    /// increasing order inside the kernel, so the result is bitwise
    /// identical to the naive multiply at any thread or panel count.
    fn multiply(&self, e: usize, u_panel: &[T], p: usize) -> Vec<T> {
        let np = self.panel_len(p);
        let mut m_e = vec![T::zero(); self.k * np];
        let v_e = &self.v_pack[e * self.v_slab..(e + 1) * self.v_slab];
        let u_e = &u_panel[e * self.c * np..(e + 1) * self.c * np];
        gemm_packed_a(self.k, np, self.c, v_e, u_e, np, &mut m_e, np);
        m_e
    }

    /// Phase 3 — one item per `(image, tile-row)` pair: gathers each
    /// tile's `n²` transform-domain products from the per-`(e, panel)`
    /// GEMM outputs, inverse-transforms, and returns the finished
    /// output rows as a flat `K × rows_here × out_w` buffer.
    fn inverse_item(&self, img: usize, ty: usize, m_chunks: &[Vec<T>]) -> Vec<T> {
        let (m, n2, k_out) = (self.m, self.n2, self.k);
        let panels = self.total_tiles.div_ceil(PANEL_TILES);
        let rows_here = m.min(self.out_h - ty * m);
        let row_base = (img * self.tiles_y + ty) * self.tiles_x;

        let mut scratch = vec![T::zero(); self.real.scratch_len()];
        let mut local = vec![T::zero(); k_out * rows_here * self.out_w];
        let mut prod = vec![T::zero(); n2];
        let mut y = vec![T::zero(); m * m];
        for k in 0..k_out {
            for tx in 0..self.tiles_x {
                let t = row_base + tx;
                let (p, tp) = (t / PANEL_TILES, t % PANEL_TILES);
                let np = self.panel_len(p);
                for (e, slot) in prod.iter_mut().enumerate() {
                    *slot = m_chunks[e * panels + p][k * np + tp];
                }
                self.real.apply_inverse(&prod, &mut y, &mut scratch);
                let cols_here = m.min(self.out_w - tx * m);
                for rr in 0..rows_here {
                    let dst = (k * rows_here + rr) * self.out_w + tx * m;
                    local[dst..dst + cols_here].copy_from_slice(&y[rr * m..rr * m + cols_here]);
                }
            }
        }
        local
    }
}

/// A Winograd layer whose kernel bank has already been transformed —
/// the reusable half of [`winograd_convolve`].
///
/// Transforming the kernel bank into the coordinate-major `V` buffer
/// (one `apply_kernel` per `(k, c)` pair, behind exact-rational
/// transform generation) costs the same no matter how many images are
/// pushed through the layer, so repeated execution — the serving path,
/// or any executor re-running a network — should pay it once.
/// [`PreparedWinograd::new`] does the transform; [`execute`]
/// (`PreparedWinograd::execute`) then runs any number of inputs against
/// the cached bank, producing output bitwise identical to the one-shot
/// [`winograd_convolve`] (which is now a thin wrapper over this type).
///
/// [`execute`]: PreparedWinograd::execute
#[derive(Debug, Clone)]
pub struct PreparedWinograd<T: Scalar> {
    real: wino_core::RealTransforms<T>,
    /// Coordinate-major transform-domain bank, pre-packed into `MR`-row
    /// GEMM micro-panels: slab `e` (of `v_slab` elements) is
    /// `gemm::pack_a` of `V_e[k][c]`, ready for any number of
    /// [`execute`](Self::execute) calls.
    v_pack: Vec<T>,
    v_slab: usize,
    /// The flattened 2-D data transform: for each coordinate
    /// `e = (i, j)`, the nonzero coefficients of
    /// `U[e] = Σ_{a,b} Bᵀ[i][a] · Bᵀ[j][b] · d[a][b]` as
    /// `(coefficient, a·n + b)` pairs in fixed `(a, b)` order — the
    /// vectorizable one-pass form the pack phase applies across a whole
    /// tile panel at once.
    data_terms: Vec<Vec<(T, usize)>>,
    k: usize,
    c: usize,
}

impl<T: Scalar> PreparedWinograd<T> {
    /// Transforms the whole kernel bank once, coordinate-major, and
    /// packs each coordinate's `V_e[k][c]` matrix into the GEMM
    /// micro-kernel's `A` layout ([`crate::gemm::pack_a`]), caching it
    /// for any number of later executions.
    ///
    /// # Errors
    ///
    /// Propagates [`TransformError`] from transform generation.
    ///
    /// # Panics
    ///
    /// Panics if kernels are not `r × r` for the given `params`.
    pub fn new(params: WinogradParams, kernels: &Tensor4<T>) -> Result<Self, TransformError> {
        let ks = kernels.shape();
        let r = params.r();
        assert_eq!((ks.h, ks.w), (r, r), "kernels must be {r}x{r} for {params}");

        let real = TransformSet::generate(params)?.to_scalar::<T>();
        let n2 = params.mults_per_tile_2d();
        let mut v_bank = vec![T::zero(); n2 * ks.n * ks.c];
        {
            let _prep = Span::enter("exec.prepare", "kernel-transform");
            let mut scratch = vec![T::zero(); real.scratch_len()];
            let mut v = vec![T::zero(); n2];
            let kflat = kernels.as_slice();
            for k in 0..ks.n {
                for c in 0..ks.c {
                    let g = &kflat[(k * ks.c + c) * r * r..][..r * r];
                    real.apply_kernel(g, &mut v, &mut scratch);
                    for (e, &ve) in v.iter().enumerate() {
                        v_bank[(e * ks.n + k) * ks.c + c] = ve;
                    }
                }
            }
        }
        let v_slab = ks.n.div_ceil(MR).max(1) * ks.c * MR;
        let mut v_pack = Vec::with_capacity(n2 * v_slab);
        {
            let _prep = Span::enter("exec.prepare", "gemm-pack");
            for e in 0..n2 {
                let v_e = &v_bank[e * ks.n * ks.c..(e + 1) * ks.n * ks.c];
                v_pack.extend_from_slice(&pack_a(ks.n, ks.c, v_e, ks.c));
            }
        }
        // Flatten the two-pass data transform U = Bᵀ d B into one
        // sparse pass per coordinate (most Bᵀ entries are zero), so the
        // pack phase can apply it across a whole tile panel at once.
        let n = params.input_tile();
        let data_terms = (0..n2)
            .map(|e| {
                let (i, j) = (e / n, e % n);
                let mut terms = Vec::new();
                for a in 0..n {
                    for b in 0..n {
                        let coef = real.bt.row(i)[a] * real.bt.row(j)[b];
                        if coef != T::zero() {
                            terms.push((coef, a * n + b));
                        }
                    }
                }
                terms
            })
            .collect();
        Ok(PreparedWinograd { real, v_pack, v_slab, data_terms, k: ks.n, c: ks.c })
    }

    /// The `F(m×m, r×r)` parameters the bank was transformed for.
    pub fn params(&self) -> WinogradParams {
        self.real.params()
    }

    /// Output kernel count `K` of the cached bank.
    pub fn kernel_count(&self) -> usize {
        self.k
    }

    /// Input channel count `C` of the cached bank.
    pub fn channels(&self) -> usize {
        self.c
    }

    /// Runs the convolution against the cached packed bank — identical
    /// semantics (and bitwise-identical output) to [`winograd_convolve`]
    /// with the kernels this bank was prepared from, at any thread
    /// count.
    ///
    /// Execution is the three-phase pipeline described in the module
    /// docs: pack tile panels, multiply coordinate-major through the
    /// GEMM micro-kernel, inverse-transform — each phase fanned across
    /// `threads` scoped workers under the deterministic chunk
    /// scheduler.
    ///
    /// # Panics
    ///
    /// Panics if `input`'s channel count disagrees with the bank or the
    /// padded input is smaller than the kernel.
    pub fn execute(&self, input: &Tensor4<T>, pad: usize, threads: usize) -> Tensor4<T> {
        let params = self.real.params();
        let is = input.shape();
        let r = params.r();
        assert_eq!(is.c, self.c, "input and kernel channel counts must match");
        assert!(is.h + 2 * pad >= r && is.w + 2 * pad >= r, "input too small for kernel");

        let m = params.m();
        let n2 = params.mults_per_tile_2d();
        let out_h = is.h + 2 * pad - r + 1;
        let out_w = is.w + 2 * pad - r + 1;
        let tiles_y = out_h.div_ceil(m);
        let tiles_x = out_w.div_ceil(m);
        let total_tiles = is.n * tiles_y * tiles_x;

        let mut output = Tensor4::zeros(Shape4 { n: is.n, c: self.k, h: out_h, w: out_w });
        if total_tiles == 0 {
            return output; // empty batch: nothing to transform
        }

        let ctx = WinoCtx {
            real: &self.real,
            input: input.as_slice(),
            in_shape: is,
            v_pack: &self.v_pack,
            v_slab: self.v_slab,
            data_terms: &self.data_terms,
            k: self.k,
            c: self.c,
            m,
            n2,
            pad: pad as isize,
            out_h,
            out_w,
            tiles_x,
            tiles_y,
            total_tiles,
        };
        let panels = total_tiles.div_ceil(PANEL_TILES);

        // Phase 1: pack tile panels (one item per panel).
        let u_panels = {
            let _phase = Span::enter("exec.phase", "pack");
            run_chunked(panels, threads, "pack", |p| ctx.pack_panel(p))
        };
        // Phase 2: coordinate-major GEMMs (one item per (e, panel),
        // e-major so a thread's contiguous chunk sweeps the panels of
        // one coordinate before moving on).
        let m_chunks = {
            let _phase = Span::enter("exec.phase", "multiply");
            run_chunked(n2 * panels, threads, "multiply", |item| {
                let (e, p) = (item / panels, item % panels);
                ctx.multiply(e, &u_panels[p], p)
            })
        };
        drop(u_panels);
        // Phase 3: inverse transforms (one item per (image, tile-row)),
        // including the scatter of finished rows into the output tensor.
        let _phase = Span::enter("exec.phase", "inverse");
        let blocks = run_chunked(is.n * tiles_y, threads, "inverse", |item| {
            ctx.inverse_item(item / tiles_y, item % tiles_y, &m_chunks)
        });

        let out_flat = output.as_mut_slice();
        for (item, local) in blocks.iter().enumerate() {
            let (img, ty) = (item / tiles_y, item % tiles_y);
            let rows_here = m.min(out_h - ty * m);
            for k in 0..self.k {
                for rr in 0..rows_here {
                    let dst = ((img * self.k + k) * out_h + ty * m + rr) * out_w;
                    let src = (k * rows_here + rr) * out_w;
                    out_flat[dst..dst + out_w].copy_from_slice(&local[src..src + out_w]);
                }
            }
        }
        output
    }
}

/// Batched, thread-parallel tiled Winograd layer convolution, generic
/// over the datapath scalar.
///
/// `input` is `(N, C, H, W)`, `kernels` `(K, C, r, r)`; output is
/// `(N, K, H+2·pad−r+1, W+2·pad−r+1)` — stride 1, the only mode
/// Winograd supports. Functionally equivalent to
/// `wino_core::WinogradAlgorithm::convolve_layer` and to the spatial
/// oracle (within datapath tolerance), but organized for speed: the
/// kernel bank is transformed once into a coordinate-major, GEMM-packed
/// `V` buffer, input tiles are packed into coordinate-major panels, and
/// the transform-domain multiply runs as `n²` channel GEMMs through the
/// register-tiled, cache-blocked micro-kernel of [`crate::gemm`] —
/// every phase fanned across `threads` scoped workers under a
/// deterministic chunk scheduler, so the output is bitwise identical at
/// any thread count.
///
/// This one-shot entry point re-transforms the kernel bank on every
/// call; callers running the same kernels repeatedly should prepare the
/// bank once with [`PreparedWinograd`] (whose `execute` is bitwise
/// identical) and reuse it.
///
/// Instantiated at `f32` this is the paper's single-precision datapath;
/// instantiated at [`wino_tensor::Fixed`] every multiply and accumulate
/// saturates like an FPGA DSP block, which is what the quantization
/// study (`EXPERIMENTS.md`) measures. The transform matrices themselves
/// are re-quantized into `T` via [`TransformSet::to_scalar`].
///
/// # Errors
///
/// Propagates [`TransformError`] from transform generation.
///
/// # Panics
///
/// Panics if channel counts disagree, kernels are not `r × r` for the
/// given `params`, or the padded input is smaller than the kernel.
pub fn winograd_convolve<T: Scalar>(
    params: WinogradParams,
    input: &Tensor4<T>,
    kernels: &Tensor4<T>,
    pad: usize,
    threads: usize,
) -> Result<Tensor4<T>, TransformError> {
    let is = input.shape();
    let ks = kernels.shape();
    assert_eq!(is.c, ks.c, "input and kernel channel counts must match");
    Ok(PreparedWinograd::new(params, kernels)?.execute(input, pad, threads))
}

/// Thread-parallel direct spatial convolution with arbitrary stride —
/// the engine's fallback for layers Winograd cannot run — generic over
/// the datapath scalar.
///
/// At `f32` this is bitwise identical to
/// `wino_baselines::spatial_convolve_strided` (the accumulation order
/// is the same); work items are `(image, kernel)` output planes
/// distributed over scoped workers. At [`wino_tensor::Fixed`] the
/// multiply-accumulate chain saturates per step, DSP-block style.
///
/// # Panics
///
/// Panics if `stride == 0`, channel counts disagree, kernels are not
/// square, or the padded input is smaller than the kernel.
pub fn spatial_convolve_mt<T: Scalar>(
    input: &Tensor4<T>,
    kernels: &Tensor4<T>,
    pad: usize,
    stride: usize,
    threads: usize,
) -> Tensor4<T> {
    let is = input.shape();
    let ks = kernels.shape();
    assert!(stride > 0, "stride must be positive");
    assert_eq!(is.c, ks.c, "input and kernel channel counts must match");
    assert_eq!(ks.h, ks.w, "kernels must be square");
    assert!(is.h + 2 * pad >= ks.h && is.w + 2 * pad >= ks.w, "input too small for kernel");
    let r = ks.h;
    let out_h = (is.h + 2 * pad - r) / stride + 1;
    let out_w = (is.w + 2 * pad - r) / stride + 1;
    let plane_stride = is.h * is.w;
    let in_flat = input.as_slice();
    let k_flat = kernels.as_slice();

    let _phase = Span::enter("exec.phase", "spatial");
    let total = is.n * ks.n;
    let planes = run_chunked(total, threads, "spatial", |item| {
        let (img, k) = (item / ks.n, item % ks.n);
        let mut plane = vec![T::zero(); out_h * out_w];
        for (o, out) in plane.iter_mut().enumerate() {
            let (y, x) = (o / out_w, o % out_w);
            let mut acc = T::zero();
            for c in 0..is.c {
                let in_plane = &in_flat[(img * is.c + c) * plane_stride..][..plane_stride];
                let kern = &k_flat[(k * ks.c + c) * r * r..][..r * r];
                for v in 0..r {
                    let iy = (y * stride + v) as isize - pad as isize;
                    if iy < 0 || iy as usize >= is.h {
                        continue;
                    }
                    for u in 0..r {
                        let ix = (x * stride + u) as isize - pad as isize;
                        if ix >= 0 && (ix as usize) < is.w {
                            acc += in_plane[iy as usize * is.w + ix as usize] * kern[v * r + u];
                        }
                    }
                }
            }
            *out = acc;
        }
        plane
    });

    let mut output = Tensor4::zeros(Shape4 { n: is.n, c: ks.n, h: out_h, w: out_w });
    let out_flat = output.as_mut_slice();
    for (item, plane) in planes.iter().enumerate() {
        out_flat[item * out_h * out_w..(item + 1) * out_h * out_w].copy_from_slice(plane);
    }
    output
}

/// Executes one layer plan on the engine it names, in the scalar type
/// of the supplied tensors (`f32`, or `Fixed<FRAC>` for an already
/// quantized datapath — see `execute_plan_quantized` for the
/// f32-in/f32-out wrapper the executor uses).
///
/// # Errors
///
/// Propagates [`TransformError`] from the Winograd path.
///
/// # Panics
///
/// Panics when `input`/`kernels` do not match `plan.shape` (batch is
/// free; channel, kernel-size and spatial extents must agree), or when
/// a hand-built plan pairs a Winograd engine with a strided shape —
/// `Schedule` lowering never produces such a plan, but `LayerPlan`'s
/// fields are public.
pub fn execute_plan<T: Scalar>(
    plan: &LayerPlan,
    input: &Tensor4<T>,
    kernels: &Tensor4<T>,
    config: &ExecConfig,
) -> Result<Tensor4<T>, TransformError> {
    let is = input.shape();
    let ks = kernels.shape();
    let s = plan.shape;
    assert_eq!((is.c, is.h, is.w), (s.c, s.h, s.w), "input does not match plan '{}'", plan.layer);
    assert_eq!(
        (ks.n, ks.c, ks.h, ks.w),
        (s.k, s.c, s.r, s.r),
        "kernels do not match plan '{}'",
        plan.layer
    );
    match plan.engine {
        EnginePlan::Winograd(params) => {
            assert_eq!(s.stride, 1, "Winograd plan '{}' requires unit stride", plan.layer);
            winograd_convolve(params, input, kernels, s.pad, config.threads)
        }
        EnginePlan::Fft { n } => {
            assert_eq!(s.stride, 1, "FFT plan '{}' requires unit stride", plan.layer);
            Ok(crate::fft::PreparedFft::new(n, kernels).execute(input, s.pad, config.threads))
        }
        EnginePlan::Spatial => {
            Ok(spatial_convolve_mt(input, kernels, s.pad, s.stride, config.threads))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_baselines::{spatial_convolve, spatial_convolve_strided};
    use wino_core::{fast_convolve_layer, FastKernel};
    use wino_tensor::{ErrorStats, SplitMix64};

    fn random_pair(seed: u64, shape: Shape4, k: usize, r: usize) -> (Tensor4<f32>, Tensor4<f32>) {
        let mut rng = SplitMix64::new(seed);
        let input = Tensor4::from_fn(shape, |_, _, _, _| rng.uniform_f32(-1.0, 1.0));
        let kernels = Tensor4::from_fn(Shape4 { n: k, c: shape.c, h: r, w: r }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        (input, kernels)
    }

    fn params(m: usize, r: usize) -> WinogradParams {
        WinogradParams::new(m, r).unwrap()
    }

    #[test]
    fn winograd_matches_oracle_across_tile_sizes() {
        let (input, kernels) = random_pair(1, Shape4 { n: 2, c: 3, h: 11, w: 13 }, 4, 3);
        let oracle = spatial_convolve(&input, &kernels, 1);
        for m in [2usize, 3, 4, 6] {
            let got = winograd_convolve(params(m, 3), &input, &kernels, 1, 2).unwrap();
            assert_eq!(got.shape(), oracle.shape());
            let stats = ErrorStats::between(got.as_slice(), oracle.as_slice());
            assert!(stats.within_abs(1e-4), "m={m}: {stats}");
        }
    }

    #[test]
    fn winograd_matches_oracle_for_5x5_kernels_unpadded() {
        let (input, kernels) = random_pair(2, Shape4 { n: 1, c: 2, h: 10, w: 9 }, 3, 5);
        let oracle = spatial_convolve(&input, &kernels, 0);
        let got = winograd_convolve(params(2, 5), &input, &kernels, 0, 3).unwrap();
        let stats = ErrorStats::between(got.as_slice(), oracle.as_slice());
        assert!(stats.within_abs(1e-4), "{stats}");
    }

    #[test]
    fn winograd_matches_hand_scheduled_fast_path() {
        let (input, kernels) = random_pair(3, Shape4 { n: 1, c: 4, h: 12, w: 12 }, 5, 3);
        let fast = fast_convolve_layer(FastKernel::F4x4, &input, &kernels, 1);
        let got = winograd_convolve(params(4, 3), &input, &kernels, 1, 2).unwrap();
        let stats = ErrorStats::between(got.as_slice(), fast.as_slice());
        assert!(stats.within_abs(1e-4), "{stats}");
    }

    #[test]
    fn thread_count_never_changes_a_bit() {
        let (input, kernels) = random_pair(4, Shape4 { n: 2, c: 3, h: 9, w: 14 }, 4, 3);
        let one = winograd_convolve(params(4, 3), &input, &kernels, 1, 1).unwrap();
        for threads in [2usize, 3, 5, 8] {
            let multi = winograd_convolve(params(4, 3), &input, &kernels, 1, threads).unwrap();
            assert_eq!(one.as_slice(), multi.as_slice(), "threads={threads}");
        }
        let s1 = spatial_convolve_mt(&input, &kernels, 1, 1, 1);
        let s4 = spatial_convolve_mt(&input, &kernels, 1, 1, 4);
        assert_eq!(s1.as_slice(), s4.as_slice());
    }

    #[test]
    fn spatial_mt_is_bitwise_the_oracle() {
        let (input, kernels) = random_pair(5, Shape4 { n: 2, c: 3, h: 9, w: 8 }, 4, 3);
        for (pad, stride) in [(0usize, 1usize), (1, 1), (1, 2), (2, 3)] {
            let oracle = spatial_convolve_strided(&input, &kernels, pad, stride);
            let got = spatial_convolve_mt(&input, &kernels, pad, stride, 3);
            assert_eq!(oracle.as_slice(), got.as_slice(), "pad={pad} stride={stride}");
        }
    }

    #[test]
    fn execute_plan_dispatches_both_engines() {
        let shape = wino_core::ConvShape { h: 8, w: 8, c: 2, k: 3, r: 3, stride: 1, pad: 1 };
        let (input, kernels) = random_pair(6, Shape4 { n: 1, c: 2, h: 8, w: 8 }, 3, 3);
        let cfg = ExecConfig::with_threads(2);
        let wino = crate::LayerPlan {
            layer: "l".into(),
            shape,
            engine: EnginePlan::Winograd(params(2, 3)),
        };
        let spat = crate::LayerPlan { layer: "l".into(), shape, engine: EnginePlan::Spatial };
        let a = execute_plan(&wino, &input, &kernels, &cfg).unwrap();
        let b = execute_plan(&spat, &input, &kernels, &cfg).unwrap();
        let stats = ErrorStats::between(a.as_slice(), b.as_slice());
        assert!(stats.within_abs(1e-4), "{stats}");
    }

    #[test]
    fn ragged_edges_are_clipped_not_padded() {
        // 7x5 output with m=4 leaves partial tiles on both axes.
        let (input, kernels) = random_pair(7, Shape4 { n: 1, c: 2, h: 9, w: 7 }, 2, 3);
        let oracle = spatial_convolve(&input, &kernels, 0);
        let got = winograd_convolve(params(4, 3), &input, &kernels, 0, 2).unwrap();
        assert_eq!(got.shape(), oracle.shape());
        let stats = ErrorStats::between(got.as_slice(), oracle.as_slice());
        assert!(stats.within_abs(1e-4), "{stats}");
    }

    #[test]
    #[should_panic(expected = "requires unit stride")]
    fn hand_built_strided_winograd_plan_panics() {
        let shape = wino_core::ConvShape { h: 8, w: 8, c: 2, k: 3, r: 3, stride: 2, pad: 1 };
        let (input, kernels) = random_pair(8, Shape4 { n: 1, c: 2, h: 8, w: 8 }, 3, 3);
        let plan = crate::LayerPlan {
            layer: "bad".into(),
            shape,
            engine: EnginePlan::Winograd(params(2, 3)),
        };
        let _ = execute_plan(&plan, &input, &kernels, &ExecConfig::with_threads(1));
    }

    #[test]
    fn config_defaults_are_sane() {
        assert!(ExecConfig::default().threads >= 1);
        assert_eq!(ExecConfig::with_threads(0).threads, 1);
    }

    #[test]
    #[should_panic(expected = "channel counts must match")]
    fn channel_mismatch_panics() {
        let input = Tensor4::<f32>::zeros(Shape4 { n: 1, c: 2, h: 8, w: 8 });
        let kernels = Tensor4::<f32>::zeros(Shape4 { n: 1, c: 3, h: 3, w: 3 });
        let _ = winograd_convolve(params(2, 3), &input, &kernels, 1, 1);
    }
}
