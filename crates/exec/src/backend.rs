//! The pluggable convolution-backend layer: one contract that every
//! prepared engine implements.
//!
//! Historically the execution stack hard-coded a two-way choice —
//! [`PreparedWinograd`] or an inline spatial closure — inside
//! [`PreparedPlan`](crate::PreparedPlan). This module extracts the
//! common **prepare-once / execute-many** shape of both into
//! [`ConvBackend`], so adding an algorithm (the overlap–save
//! [`PreparedFft`] is the third implementor) touches engine selection
//! in exactly one place instead of every match over
//! [`EnginePlan`](crate::EnginePlan).
//!
//! The contract every implementor honors:
//!
//! * **Prepare once** — anything derivable from the kernel bank alone
//!   (the Winograd `V`-bank, the FFT kernel spectra, a quantized copy
//!   of the kernels) is computed at construction, never per call.
//! * **Execute many, batched and threaded** — `execute` takes an
//!   `(N, C, H, W)` batch and a worker fan-out; batch size is free per
//!   call.
//! * **Bitwise thread-count-invariance** — every work item accumulates
//!   in one fixed order under the deterministic chunk scheduler, so
//!   output bits never depend on `threads`. `crates/exec/tests` pins
//!   this per backend.

use crate::fft::PreparedFft;
use crate::layer::PreparedWinograd;
use crate::spatial_convolve_mt;
use wino_tensor::{Scalar, Tensor4};

/// A prepared convolution engine: kernel bank preprocessed at
/// construction, batched threaded execution, bitwise
/// thread-count-invariance (see the module docs for the full contract).
///
/// Layer *geometry* other than the kernel bank — padding, and for
/// strided-capable backends the stride — is passed at execution time,
/// mirroring [`PreparedWinograd::execute`]: the prepared state depends
/// only on the kernels, so one backend can serve any compatible
/// geometry.
pub trait ConvBackend<T: Scalar>: Send + Sync {
    /// Human-readable algorithm label, matching the corresponding
    /// [`EnginePlan`](crate::EnginePlan) display: `F(4x4, 3x3)`,
    /// `FFT(16)`, or `spatial`.
    fn algorithm(&self) -> String;

    /// Runs the prepared engine over an `(N, C, H, W)` batch with
    /// symmetric zero padding `pad`, fanned across `threads` workers.
    ///
    /// # Panics
    ///
    /// Panics when `input` is incompatible with the prepared kernel
    /// bank (channel mismatch, or a padded extent smaller than the
    /// kernel).
    fn execute(&self, input: &Tensor4<T>, pad: usize, threads: usize) -> Tensor4<T>;
}

/// The spatial engine as a prepared backend: direct convolution with
/// arbitrary stride, the fallback every layer can run.
///
/// There is no transform to hoist, so "preparation" is only owning the
/// (possibly quantized) kernel tensor and the layer stride; execution
/// is [`spatial_convolve_mt`] unchanged — bitwise identical to the
/// one-shot path at any thread count.
#[derive(Debug, Clone)]
pub struct PreparedSpatial<T: Scalar> {
    kernels: Tensor4<T>,
    stride: usize,
}

impl<T: Scalar> PreparedSpatial<T> {
    /// Wraps a kernel bank and stride for repeated spatial execution.
    ///
    /// # Panics
    ///
    /// Panics when `stride == 0` or kernels are not square.
    pub fn new(kernels: Tensor4<T>, stride: usize) -> PreparedSpatial<T> {
        assert!(stride > 0, "stride must be positive");
        let ks = kernels.shape();
        assert_eq!(ks.h, ks.w, "kernels must be square");
        PreparedSpatial { kernels, stride }
    }

    /// The stride bound at construction.
    pub fn stride(&self) -> usize {
        self.stride
    }
}

impl<T: Scalar> ConvBackend<T> for PreparedSpatial<T> {
    fn algorithm(&self) -> String {
        "spatial".to_owned()
    }

    fn execute(&self, input: &Tensor4<T>, pad: usize, threads: usize) -> Tensor4<T> {
        spatial_convolve_mt(input, &self.kernels, pad, self.stride, threads)
    }
}

impl<T: Scalar> ConvBackend<T> for PreparedWinograd<T> {
    fn algorithm(&self) -> String {
        self.params().to_string()
    }

    fn execute(&self, input: &Tensor4<T>, pad: usize, threads: usize) -> Tensor4<T> {
        PreparedWinograd::execute(self, input, pad, threads)
    }
}

impl<T: Scalar> ConvBackend<T> for PreparedFft<T> {
    fn algorithm(&self) -> String {
        format!("FFT({})", self.fft_size())
    }

    fn execute(&self, input: &Tensor4<T>, pad: usize, threads: usize) -> Tensor4<T> {
        PreparedFft::execute(self, input, pad, threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_core::WinogradParams;
    use wino_tensor::{Shape4, SplitMix64};

    fn pair(seed: u64) -> (Tensor4<f32>, Tensor4<f32>) {
        let mut rng = SplitMix64::new(seed);
        let input = Tensor4::from_fn(Shape4 { n: 2, c: 3, h: 10, w: 9 }, |_, _, _, _| {
            rng.uniform_f32(-1.0, 1.0)
        });
        let kernels = Tensor4::from_fn(Shape4 { n: 4, c: 3, h: 3, w: 3 }, |_, _, _, _| {
            rng.uniform_f32(-0.5, 0.5)
        });
        (input, kernels)
    }

    #[test]
    fn trait_objects_dispatch_to_the_inherent_paths_bitwise() {
        let (input, kernels) = pair(21);
        let wino = PreparedWinograd::new(WinogradParams::new(2, 3).unwrap(), &kernels).unwrap();
        let fft = PreparedFft::new(8, &kernels);
        let spatial = PreparedSpatial::new(kernels.clone(), 1);
        let backends: Vec<Box<dyn ConvBackend<f32>>> =
            vec![Box::new(wino.clone()), Box::new(fft.clone()), Box::new(spatial)];
        assert_eq!(
            backends[0].execute(&input, 1, 2).as_slice(),
            wino.execute(&input, 1, 2).as_slice()
        );
        assert_eq!(
            backends[1].execute(&input, 1, 2).as_slice(),
            fft.execute(&input, 1, 2).as_slice()
        );
        assert_eq!(
            backends[2].execute(&input, 1, 2).as_slice(),
            spatial_convolve_mt(&input, &kernels, 1, 1, 2).as_slice()
        );
    }

    #[test]
    fn algorithm_labels_match_engine_plan_display() {
        let (_, kernels) = pair(22);
        let wino = PreparedWinograd::new(WinogradParams::new(4, 3).unwrap(), &kernels).unwrap();
        assert_eq!(ConvBackend::<f32>::algorithm(&wino), "F(4x4, 3x3)");
        assert_eq!(PreparedFft::new(16, &kernels).algorithm(), "FFT(16)");
        assert_eq!(PreparedSpatial::new(kernels, 2).algorithm(), "spatial");
    }

    #[test]
    #[should_panic(expected = "stride must be positive")]
    fn zero_stride_spatial_backend_panics() {
        let kernels = Tensor4::<f32>::zeros(Shape4 { n: 1, c: 1, h: 3, w: 3 });
        let _ = PreparedSpatial::new(kernels, 0);
    }
}
