//! Behavioural tests for wino-obs: span stacks and self-time,
//! collection scopes, the two recorders, and both exposition renders.
//!
//! Tests that flip the *global* tracing flag serialise on a mutex —
//! the flag is process-wide and the test harness runs threads.

use std::sync::{Arc, Mutex, OnceLock};
use std::thread;
use std::time::Duration;

use wino_obs::{
    collect, AggregatingProfiler, MetricFamily, MetricKind, MetricSample, ObsReport, Recorder,
    Span, SpanRecord, TraceRecorder,
};

fn global_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    match LOCK.get_or_init(|| Mutex::new(())).lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

fn spin(duration: Duration) {
    let start = std::time::Instant::now();
    while start.elapsed() < duration {
        std::hint::spin_loop();
    }
}

#[test]
fn disabled_spans_produce_nothing_and_collect_captures_nesting() {
    // With no sink active the guard is inert…
    {
        let _span = Span::enter("test", "ghost");
    }
    // …and a collect scope sees only what happens inside it.
    let (value, spans) = collect(|| {
        let _outer = Span::enter("test", "outer");
        {
            let _inner = Span::enter("test", "inner");
            spin(Duration::from_millis(2));
        }
        spin(Duration::from_millis(2));
        42
    });
    assert_eq!(value, 42);
    assert_eq!(spans.len(), 2, "ghost span must not appear");
    // Completion order: inner closes before outer.
    assert_eq!(spans[0].label, "inner");
    assert_eq!(spans[0].path, "outer/inner");
    assert_eq!(spans[1].label, "outer");
    assert_eq!(spans[1].path, "outer");
    // Self-time: outer excludes inner's time, totals nest.
    let inner = &spans[0];
    let outer = &spans[1];
    assert!(outer.duration >= inner.duration);
    assert!(outer.self_time <= outer.duration - inner.duration + Duration::from_millis(1));
    assert!(inner.self_time == inner.duration, "leaf self == total");
}

#[test]
fn collect_scopes_nest_and_partition() {
    let ((), outer_spans) = collect(|| {
        {
            let _before = Span::enter("test", "before");
        }
        let ((), inner_spans) = collect(|| {
            let _inside = Span::enter("test", "inside");
        });
        assert_eq!(inner_spans.len(), 1);
        assert_eq!(inner_spans[0].label, "inside");
    });
    // The inner collect took "inside"; the outer scope kept "before".
    assert_eq!(outer_spans.len(), 1);
    assert_eq!(outer_spans[0].label, "before");
}

#[test]
fn collect_only_sees_the_current_thread() {
    let ((), spans) = collect(|| {
        thread::scope(|scope| {
            scope.spawn(|| {
                let _elsewhere = Span::enter("test", "other-thread");
            });
        });
        let _here = Span::enter("test", "this-thread");
    });
    assert_eq!(spans.len(), 1);
    assert_eq!(spans[0].label, "this-thread");
}

#[test]
fn global_recorder_receives_spans_and_intervals() {
    let _guard = global_lock();
    let trace = Arc::new(TraceRecorder::new(16));
    wino_obs::set_recorder(trace.clone());
    wino_obs::enable();
    assert!(wino_obs::is_enabled());
    {
        let _span = Span::enter("test", "traced");
    }
    wino_obs::record_interval(
        "test",
        "interval",
        7,
        Duration::from_micros(100),
        Duration::from_micros(250),
    );
    wino_obs::disable();
    wino_obs::clear_recorder();
    assert!(!wino_obs::is_enabled());
    {
        let _span = Span::enter("test", "after-disable");
    }
    assert_eq!(trace.len(), 2);
    let json = trace.chrome_trace_json();
    assert!(json.contains("\"name\":\"traced\""));
    assert!(json.contains("\"name\":\"interval\""));
    assert!(!json.contains("after-disable"));
    assert!(json.contains("\"id\":7"));
    assert!(json.contains("\"dur\":250.000"));
    assert!(json.starts_with("{\"traceEvents\":["));
}

#[test]
fn trace_recorder_ring_buffer_is_bounded() {
    let trace = TraceRecorder::new(3);
    for i in 0..10u64 {
        trace.record(&SpanRecord {
            category: "test",
            label: format!("s{i}"),
            path: format!("s{i}"),
            id: i,
            thread: 1,
            start: Duration::ZERO,
            duration: Duration::from_micros(1),
            self_time: Duration::from_micros(1),
        });
    }
    assert_eq!(trace.len(), 3);
    assert_eq!(trace.dropped(), 7);
    let json = trace.chrome_trace_json();
    assert!(json.contains("s9") && json.contains("s7"), "keeps newest");
    assert!(!json.contains("\"name\":\"s0\""), "evicts oldest");
    assert!(json.contains("\"dropped\":7"));
}

#[test]
fn profiler_aggregates_by_path_with_self_time() {
    let _guard = global_lock();
    let profiler = Arc::new(AggregatingProfiler::new());
    wino_obs::set_recorder(profiler.clone());
    wino_obs::enable();
    for _ in 0..3 {
        let _layer = Span::enter("exec.layer", "conv");
        let _phase = Span::enter("exec.phase", "pack");
        spin(Duration::from_millis(1));
    }
    wino_obs::disable();
    wino_obs::clear_recorder();

    let snapshot = profiler.snapshot();
    assert_eq!(snapshot.entries.len(), 2);
    let layer = snapshot.get("conv").expect("layer node");
    let phase = snapshot.get("conv/pack").expect("phase node");
    assert_eq!(layer.count, 3);
    assert_eq!(phase.count, 3);
    assert!(layer.total >= phase.total);
    assert!(
        layer.self_time <= layer.total - phase.total + Duration::from_millis(1),
        "parent self-time excludes child time"
    );

    let tree = snapshot.render_tree();
    let conv_line = tree.lines().position(|l| l.trim_start().starts_with("conv ")).unwrap();
    let pack_line = tree.lines().position(|l| l.trim_start().starts_with("pack ")).unwrap();
    assert!(pack_line > conv_line, "children render under parents");
    assert!(tree.lines().nth(pack_line).unwrap().starts_with("  "), "children indent");

    profiler.reset();
    assert!(profiler.snapshot().entries.is_empty());
}

#[test]
fn obs_report_renders_prometheus_and_json() {
    let report = ObsReport {
        metrics: vec![
            MetricFamily::scalar("wino_up", "Liveness.", MetricKind::Gauge, 1.0),
            MetricFamily {
                name: "wino_requests_total".into(),
                help: "Completed requests.".into(),
                kind: MetricKind::Counter,
                samples: vec![
                    MetricSample { labels: vec![("model".into(), "vgg\"16".into())], value: 240.0 },
                    MetricSample { labels: vec![("model".into(), "tiny".into())], value: 1.5 },
                ],
            },
        ],
        profile: None,
    };
    let text = report.to_prometheus();
    assert!(text.contains("# HELP wino_up Liveness."));
    assert!(text.contains("# TYPE wino_up gauge"));
    assert!(text.contains("wino_up 1\n"));
    assert!(text.contains("# TYPE wino_requests_total counter"));
    assert!(text.contains("wino_requests_total{model=\"vgg\\\"16\"} 240"));
    assert!(text.contains("wino_requests_total{model=\"tiny\"} 1.5"));

    let json = report.to_json();
    assert!(json.contains("\"name\":\"wino_requests_total\""));
    assert!(json.contains("\"kind\":\"counter\""));
    assert!(json.contains("\"model\":\"vgg\\\"16\""));
    assert!(json.contains("\"value\":240"));
    assert!(!json.contains("\"profile\""), "absent profile is omitted");
}

#[test]
fn obs_report_embeds_profile_snapshot() {
    let profiler = AggregatingProfiler::new();
    profiler.record(&SpanRecord {
        category: "exec.phase",
        label: "pack".into(),
        path: "conv/pack".into(),
        id: 0,
        thread: 1,
        start: Duration::ZERO,
        duration: Duration::from_millis(4),
        self_time: Duration::from_millis(4),
    });
    let report = ObsReport { metrics: Vec::new(), profile: Some(profiler.snapshot()) };
    let json = report.to_json();
    assert!(json.contains("\"profile\":[{\"path\":\"conv/pack\""));
    assert!(json.contains("\"total_ms\":4.000000"));
}
