//! The span primitive: RAII timing scopes with thread-local stacks, a
//! global activity gate, and two sinks (global [`Recorder`] dispatch
//! and per-thread collection).

use std::cell::RefCell;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};
use std::time::{Duration, Instant};

use crate::recorder::Recorder;
use crate::req::ReqEvent;

/// Count of live sinks: the global tracing flag contributes one, every
/// in-flight [`collect`] contributes one. `Span::enter` does a single
/// relaxed load of this counter and bails when it is zero — that load
/// is the entire cost of an instrumented scope while observability is
/// off.
static ACTIVITY: AtomicU32 = AtomicU32::new(0);

/// Whether completed spans are dispatched to the global recorder.
static TRACING: AtomicU32 = AtomicU32::new(0);

/// The installed global recorder, if any. Only read on span
/// completion while tracing is enabled, so the lock never appears on
/// the disabled path.
static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// The process-wide time origin all span start offsets are relative
/// to. Initialised by the first span (or interval) ever recorded.
static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Monotonic thread-id allocator (`std::thread::ThreadId` has no
/// stable integer form on this toolchain).
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Small dense id for the current thread, for trace attribution.
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);

    /// The stack of open spans on this thread.
    static STACK: RefCell<Vec<Frame>> = const { RefCell::new(Vec::new()) };

    /// Destination for spans completed on this thread while a
    /// [`collect`] scope is active.
    static COLLECTOR: RefCell<Option<Vec<SpanRecord>>> = const { RefCell::new(None) };
}

/// One open span on a thread's stack.
struct Frame {
    category: &'static str,
    label: String,
    /// Slash-joined labels from the stack root down to this span.
    path: String,
    start: Instant,
    /// Nanoseconds spent in already-closed child spans, subtracted
    /// from the total to yield self-time.
    child_ns: u64,
}

/// A completed span (or cross-thread interval), as delivered to
/// [`Recorder`] sinks and returned by [`collect`].
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Coarse grouping, e.g. `"exec.phase"` or `"serve.request"`.
    pub category: &'static str,
    /// Instance label, e.g. `"pack"` or a layer name.
    pub label: String,
    /// Slash-joined labels of the enclosing span stack, root first.
    /// For [`record_interval`] this is just the label.
    pub path: String,
    /// Caller-chosen correlation id (request sequence number, chunk
    /// index, …). Zero for plain scoped spans.
    pub id: u64,
    /// Dense id of the thread the span completed on.
    pub thread: u64,
    /// Start offset relative to the process trace epoch.
    pub start: Duration,
    /// Wall-clock duration of the whole span.
    pub duration: Duration,
    /// Duration minus time spent in same-thread child spans. For
    /// leaves (and intervals) this equals `duration`.
    pub self_time: Duration,
}

/// An RAII timing scope. Construct with [`Span::enter`]; the span
/// closes (and is delivered to active sinks) when the guard drops.
#[must_use = "a span measures the scope it is alive for"]
pub struct Span {
    /// False when observability was idle at enter time — drop is then
    /// a no-op and nothing was allocated.
    armed: bool,
}

impl Span {
    /// Opens a span. When no sink is active (the common case) this is
    /// one relaxed atomic load and returns an inert guard.
    #[inline]
    pub fn enter(category: &'static str, label: &str) -> Span {
        if ACTIVITY.load(Ordering::Relaxed) == 0 {
            return Span { armed: false };
        }
        Self::enter_armed(category, label)
    }

    /// Slow path: push a frame on the thread-local stack.
    #[cold]
    fn enter_armed(category: &'static str, label: &str) -> Span {
        let start = Instant::now();
        EPOCH.get_or_init(|| start);
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            let path = match stack.last() {
                Some(parent) => format!("{}/{}", parent.path, label),
                None => label.to_owned(),
            };
            stack.push(Frame { category, label: label.to_owned(), path, start, child_ns: 0 });
        });
        Span { armed: true }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if !self.armed {
            return;
        }
        let Some(frame) = STACK.with(|stack| stack.borrow_mut().pop()) else {
            return;
        };
        let duration = frame.start.elapsed();
        let total_ns = u64::try_from(duration.as_nanos()).unwrap_or(u64::MAX);
        let self_ns = total_ns.saturating_sub(frame.child_ns);
        STACK.with(|stack| {
            if let Some(parent) = stack.borrow_mut().last_mut() {
                parent.child_ns = parent.child_ns.saturating_add(total_ns);
            }
        });
        let epoch = *EPOCH.get_or_init(|| frame.start);
        let record = SpanRecord {
            category: frame.category,
            label: frame.label,
            path: frame.path,
            id: 0,
            thread: THREAD_ID.with(|t| *t),
            start: frame.start.saturating_duration_since(epoch),
            duration,
            self_time: Duration::from_nanos(self_ns),
        };
        dispatch(record);
    }
}

/// Reports a span that could not be expressed as a lexical scope —
/// typically an interval measured across threads, like a serve
/// request's queue wait. `start` is relative to any caller-chosen
/// origin consistent within a trace. Delivered to the global recorder
/// only (never to thread-local collectors: the interval did not happen
/// "on" the reporting thread); a single relaxed load when tracing is
/// disabled.
#[inline]
pub fn record_interval(
    category: &'static str,
    label: &str,
    id: u64,
    start: Duration,
    duration: Duration,
) {
    if TRACING.load(Ordering::Relaxed) == 0 {
        return;
    }
    let record = SpanRecord {
        category,
        label: label.to_owned(),
        path: label.to_owned(),
        id,
        thread: THREAD_ID.with(|t| *t),
        start,
        duration,
        self_time: duration,
    };
    if let Ok(guard) = RECORDER.read() {
        if let Some(recorder) = guard.as_ref() {
            recorder.record(&record);
        }
    }
}

/// Reports a request-scoped causal event (see [`ReqEvent`]) to the
/// global recorder. Like [`record_interval`], this is a single relaxed
/// load when tracing is disabled and is never delivered to
/// thread-local collectors — request timelines are a cross-thread
/// concern by construction.
#[inline]
pub fn record_req(event: &ReqEvent) {
    if TRACING.load(Ordering::Relaxed) == 0 {
        return;
    }
    if let Ok(guard) = RECORDER.read() {
        if let Some(recorder) = guard.as_ref() {
            recorder.record_req(event);
        }
    }
}

/// Time elapsed since the process trace epoch (the origin all span
/// `start` offsets are relative to). Initialises the epoch on first
/// use, so the first caller observes zero. Emission sites without a
/// natural clock (e.g. the exec layer's admission hook) use this to
/// stamp [`record_interval`] starts consistently with scoped spans.
pub fn epoch_elapsed() -> Duration {
    EPOCH.get_or_init(Instant::now).elapsed()
}

/// Delivers a completed span to every active sink.
fn dispatch(record: SpanRecord) {
    COLLECTOR.with(|collector| {
        if let Some(sink) = collector.borrow_mut().as_mut() {
            sink.push(record.clone());
        }
    });
    if TRACING.load(Ordering::Relaxed) != 0 {
        if let Ok(guard) = RECORDER.read() {
            if let Some(recorder) = guard.as_ref() {
                recorder.record(&record);
            }
        }
    }
}

/// Turns on global tracing: completed spans are dispatched to the
/// recorder installed with [`set_recorder`]. Idempotent.
pub fn enable() {
    if TRACING.swap(1, Ordering::Relaxed) == 0 {
        ACTIVITY.fetch_add(1, Ordering::Relaxed);
    }
}

/// Turns global tracing back off. Idempotent.
pub fn disable() {
    if TRACING.swap(0, Ordering::Relaxed) != 0 {
        ACTIVITY.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Whether global tracing is currently enabled.
pub fn is_enabled() -> bool {
    TRACING.load(Ordering::Relaxed) != 0
}

/// Installs the global [`Recorder`] spans are dispatched to while
/// tracing is [`enable`]d. Replaces any previous recorder.
///
/// Recorder implementations must not open spans of their own — a
/// recording recorder would recurse.
pub fn set_recorder(recorder: Arc<dyn Recorder>) {
    if let Ok(mut guard) = RECORDER.write() {
        *guard = Some(recorder);
    }
}

/// Removes the global recorder installed by [`set_recorder`].
pub fn clear_recorder() {
    if let Ok(mut guard) = RECORDER.write() {
        *guard = None;
    }
}

/// Restores the previous collector (and releases the activity ticket)
/// even if the collected closure panics.
struct CollectGuard {
    prev: Option<Option<Vec<SpanRecord>>>,
}

impl Drop for CollectGuard {
    fn drop(&mut self) {
        if let Some(prev) = self.prev.take() {
            COLLECTOR.with(|collector| *collector.borrow_mut() = prev);
            ACTIVITY.fetch_sub(1, Ordering::Relaxed);
        }
    }
}

/// Runs `f` with span collection active on the current thread and
/// returns its result together with every span that *completed* on
/// this thread during the call (innermost first, in completion order).
///
/// Collection is independent of global tracing: it arms [`Span::enter`]
/// via the same activity gate, so instrumented code produces records
/// for the collector even when [`is_enabled`] is false. Spans opened
/// on other threads (e.g. worker-pool threads) are not captured —
/// use global tracing with a [`Recorder`] for whole-process capture.
/// Nested `collect` scopes partition records: the inner scope takes
/// the spans that complete within it.
pub fn collect<R>(f: impl FnOnce() -> R) -> (R, Vec<SpanRecord>) {
    let prev = COLLECTOR.with(|collector| collector.borrow_mut().replace(Vec::new()));
    ACTIVITY.fetch_add(1, Ordering::Relaxed);
    let mut guard = CollectGuard { prev: Some(prev) };
    let out = f();
    let prev = guard.prev.take().expect("collect guard armed exactly once");
    let records = COLLECTOR.with(|collector| {
        let mut slot = collector.borrow_mut();
        let records = slot.take().unwrap_or_default();
        *slot = prev;
        records
    });
    ACTIVITY.fetch_sub(1, Ordering::Relaxed);
    (out, records)
}
