//! A minimal JSON validity checker.
//!
//! `wino-obs` deliberately has no dependencies, yet it (and the bench
//! binaries built on it) emit JSON artifacts — profiles, Chrome
//! traces, flight-recorder dumps, merged `BENCH_*.json` sections —
//! that tests must be able to gate on "this actually parses".
//! [`validate_json`] is a recursive-descent checker over the JSON
//! grammar (RFC 8259): it accepts or rejects, it does not build a
//! document tree.

/// Checks that `input` is one complete, well-formed JSON value.
///
/// Returns the byte offset and a short description of the first
/// violation on failure. Nesting is limited to 128 levels so a
/// malformed deeply-nested input cannot overflow the stack.
///
/// ```
/// use wino_obs::validate_json;
/// assert!(validate_json("{\"a\": [1, 2.5e3, true, null, \"x\\n\"]}").is_ok());
/// assert!(validate_json("{\"a\": }").is_err());
/// ```
pub fn validate_json(input: &str) -> Result<(), String> {
    let mut p = Parser { bytes: input.as_bytes(), pos: 0 };
    p.skip_ws();
    p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing content after the top-level value"));
    }
    Ok(())
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, what: &str) -> String {
        format!("invalid JSON at byte {}: {what}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<(), String> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting deeper than 128 levels"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => self.string(),
            Some(b't') => self.literal("true"),
            Some(b'f') => self.literal("false"),
            Some(b'n') => self.literal("null"),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn object(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'{')?;
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<(), String> {
        self.expect(b'[')?;
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(());
        }
        loop {
            self.skip_ws();
            self.value(depth + 1)?;
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(());
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<(), String> {
        self.expect(b'"')?;
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(());
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => {
                            self.pos += 1;
                        }
                        Some(b'u') => {
                            self.pos += 1;
                            for _ in 0..4 {
                                if !self.peek().is_some_and(|b| b.is_ascii_hexdigit()) {
                                    return Err(self.err("\\u needs four hex digits"));
                                }
                                self.pos += 1;
                            }
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                }
                Some(b) if b < 0x20 => {
                    return Err(self.err("unescaped control character in string"));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn number(&mut self) -> Result<(), String> {
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => self.digits()?,
            _ => return Err(self.err("expected a digit")),
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            self.digits()?;
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            self.digits()?;
        }
        Ok(())
    }

    fn digits(&mut self) -> Result<(), String> {
        if !self.peek().is_some_and(|b| b.is_ascii_digit()) {
            return Err(self.err("expected a digit"));
        }
        while self.peek().is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        Ok(())
    }

    fn literal(&mut self, word: &str) -> Result<(), String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err("invalid literal"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::validate_json;

    #[test]
    fn accepts_well_formed_documents() {
        for ok in [
            "null",
            "true",
            "-12.5e-3",
            "\"\"",
            "\"\\u00e9\\n\"",
            "[]",
            "{}",
            "[1, [2, {\"a\": null}], \"b\"]",
            "{\"nested\": {\"deep\": [0.5, 1e9]}, \"t\": false}",
            "  {\"ws\": 1}  ",
        ] {
            validate_json(ok).unwrap_or_else(|e| panic!("rejected {ok:?}: {e}"));
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "[1, ]",
            "[1 2]",
            "{\"a\" 1}",
            "{'a': 1}",
            "01",
            "1.",
            "1e",
            "\"unterminated",
            "\"bad\\escape\"",
            "nul",
            "{} extra",
            "\u{1}",
        ] {
            assert!(validate_json(bad).is_err(), "accepted {bad:?}");
        }
    }

    #[test]
    fn depth_is_bounded() {
        let deep = "[".repeat(500) + &"]".repeat(500);
        let err = validate_json(&deep).expect_err("too deep");
        assert!(err.contains("nesting"), "{err}");
    }
}
