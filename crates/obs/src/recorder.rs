//! Span sinks: the [`Recorder`] trait and the two shipped
//! implementations — an aggregating profiler (poor-man's flamegraph)
//! and a bounded ring-buffer trace recorder with Chrome `trace_event`
//! export.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use crate::report::json_escape;
use crate::req::ReqEvent;
use crate::span::SpanRecord;

/// A sink for completed spans. Installed globally with
/// [`crate::set_recorder`]; called from whichever thread the span
/// completed on, so implementations must be `Send + Sync`.
/// Implementations must not open spans themselves (that would
/// recurse).
pub trait Recorder: Send + Sync {
    /// Accepts one completed span.
    fn record(&self, span: &SpanRecord);

    /// Accepts one request-scoped causal event (see
    /// [`crate::record_req`]). Sinks that only care about spans — the
    /// profiler, the span ring — keep this default no-op;
    /// [`crate::TraceIndex`] overrides it.
    fn record_req(&self, _event: &ReqEvent) {}
}

/// Aggregated statistics for one `(path)` node of the span tree.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileEntry {
    /// Slash-joined stack path identifying the node (`"conv3/pack"`).
    pub path: String,
    /// Category of the spans folded into this node.
    pub category: &'static str,
    /// Label of the spans folded into this node (last path segment).
    pub label: String,
    /// Number of spans folded in.
    pub count: u64,
    /// Sum of wall-clock durations.
    pub total: Duration,
    /// Sum of self-times (duration minus same-thread children).
    pub self_time: Duration,
}

/// A point-in-time copy of an [`AggregatingProfiler`], renderable as a
/// sorted text tree or JSON.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ProfileSnapshot {
    /// All aggregated nodes, sorted by path.
    pub entries: Vec<ProfileEntry>,
}

impl ProfileSnapshot {
    /// Looks up the node with the exact given path.
    pub fn get(&self, path: &str) -> Option<&ProfileEntry> {
        self.entries.iter().find(|e| e.path == path)
    }

    /// Renders the profile as an indented tree, siblings sorted by
    /// total time descending — a poor-man's flamegraph:
    ///
    /// ```text
    /// conv3                 [exec.layer]      1 calls   24.500 ms total   0.400 ms self
    ///   multiply            [exec.phase]      1 calls   14.100 ms total  14.100 ms self
    ///   pack                [exec.phase]      1 calls    6.000 ms total   6.000 ms self
    /// ```
    pub fn render_tree(&self) -> String {
        let mut children: BTreeMap<&str, Vec<&ProfileEntry>> = BTreeMap::new();
        let mut roots: Vec<&ProfileEntry> = Vec::new();
        for entry in &self.entries {
            match entry.path.rsplit_once('/') {
                Some((parent, _)) => children.entry(parent).or_default().push(entry),
                None => roots.push(entry),
            }
        }
        let mut out = String::new();
        let by_total_desc =
            |a: &&ProfileEntry, b: &&ProfileEntry| b.total.cmp(&a.total).then(a.path.cmp(&b.path));
        roots.sort_by(by_total_desc);
        let mut stack: Vec<(&ProfileEntry, usize)> =
            roots.into_iter().rev().map(|e| (e, 0)).collect();
        while let Some((entry, depth)) = stack.pop() {
            let _ = writeln!(
                out,
                "{:indent$}{:<24} [{}] {:>7} calls {:>12.3} ms total {:>12.3} ms self",
                "",
                entry.label,
                entry.category,
                entry.count,
                entry.total.as_secs_f64() * 1e3,
                entry.self_time.as_secs_f64() * 1e3,
                indent = depth * 2,
            );
            if let Some(kids) = children.get(entry.path.as_str()) {
                let mut kids = kids.clone();
                kids.sort_by(by_total_desc);
                for kid in kids.into_iter().rev() {
                    stack.push((kid, depth + 1));
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON array of node objects.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, entry) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"path\":\"{}\",\"category\":\"{}\",\"label\":\"{}\",\"count\":{},\
                 \"total_ms\":{:.6},\"self_ms\":{:.6}}}",
                json_escape(&entry.path),
                json_escape(entry.category),
                json_escape(&entry.label),
                entry.count,
                entry.total.as_secs_f64() * 1e3,
                entry.self_time.as_secs_f64() * 1e3,
            );
        }
        out.push(']');
        out
    }
}

/// Folded per-path statistics, keyed by span path.
#[derive(Default)]
struct ProfileStats {
    by_path: BTreeMap<String, ProfileEntry>,
}

/// A [`Recorder`] that folds spans into per-path call-count / total /
/// self-time aggregates. Cheap enough to stay installed for a whole
/// bench run; snapshot at any point with
/// [`AggregatingProfiler::snapshot`].
#[derive(Default)]
pub struct AggregatingProfiler {
    stats: Mutex<ProfileStats>,
}

impl AggregatingProfiler {
    /// Creates an empty profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies the current aggregates out, sorted by path.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let stats = self.stats.lock().expect("profiler lock poisoned");
        ProfileSnapshot { entries: stats.by_path.values().cloned().collect() }
    }

    /// Discards all aggregates.
    pub fn reset(&self) {
        self.stats.lock().expect("profiler lock poisoned").by_path.clear();
    }
}

impl Recorder for AggregatingProfiler {
    fn record(&self, span: &SpanRecord) {
        let mut stats = self.stats.lock().expect("profiler lock poisoned");
        let entry = stats.by_path.entry(span.path.clone()).or_insert_with(|| ProfileEntry {
            path: span.path.clone(),
            category: span.category,
            label: span.label.clone(),
            count: 0,
            total: Duration::ZERO,
            self_time: Duration::ZERO,
        });
        entry.count += 1;
        entry.total += span.duration;
        entry.self_time += span.self_time;
    }
}

/// A [`Recorder`] keeping the most recent spans in a bounded ring
/// buffer, exportable as Chrome `trace_event` JSON
/// (`chrome://tracing` / Perfetto's "complete event" format).
pub struct TraceRecorder {
    capacity: usize,
    buffer: Mutex<VecDeque<SpanRecord>>,
    dropped: AtomicU64,
}

impl TraceRecorder {
    /// Creates a recorder retaining at most `capacity` spans; older
    /// spans are evicted first.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(1),
            buffer: Mutex::new(VecDeque::new()),
            dropped: AtomicU64::new(0),
        }
    }

    /// Number of spans evicted because the ring buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of spans currently retained.
    pub fn len(&self) -> usize {
        self.buffer.lock().expect("trace lock poisoned").len()
    }

    /// Whether no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Exports the retained spans as a Chrome `trace_event` JSON
    /// document (one `"X"` complete event per span, timestamps in
    /// microseconds, sorted by start so viewers never see time run
    /// backwards). Load the result in `chrome://tracing` or Perfetto
    /// for a real flamegraph.
    pub fn chrome_trace_json(&self) -> String {
        let buffer = self.buffer.lock().expect("trace lock poisoned");
        let mut spans: Vec<&SpanRecord> = buffer.iter().collect();
        spans.sort_by_key(|s| s.start);
        let mut out = String::from("{\"traceEvents\":[");
        for (i, span) in spans.into_iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"id\":{},\"self_us\":{:.3}}}}}",
                json_escape(&span.label),
                json_escape(span.category),
                span.thread,
                span.start.as_secs_f64() * 1e6,
                span.duration.as_secs_f64() * 1e6,
                span.id,
                span.self_time.as_secs_f64() * 1e6,
            );
        }
        let _ = write!(
            out,
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"dropped\":{}}}}}",
            self.dropped()
        );
        out
    }
}

impl Recorder for TraceRecorder {
    fn record(&self, span: &SpanRecord) {
        let mut buffer = self.buffer.lock().expect("trace lock poisoned");
        if buffer.len() == self.capacity {
            buffer.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buffer.push_back(span.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;

    fn span(label: &str, start_us: u64) -> SpanRecord {
        SpanRecord {
            category: "test",
            label: label.to_owned(),
            path: label.to_owned(),
            id: 0,
            thread: 1,
            start: Duration::from_micros(start_us),
            duration: Duration::from_micros(10),
            self_time: Duration::from_micros(10),
        }
    }

    #[test]
    fn ring_wrap_keeps_the_newest_and_counts_drops_exactly() {
        let recorder = TraceRecorder::new(3);
        for i in 0..7u64 {
            recorder.record(&span(&format!("s{i}"), i));
        }
        assert_eq!(recorder.len(), 3);
        assert_eq!(recorder.dropped(), 4);
        let json = recorder.chrome_trace_json();
        for survivor in ["s4", "s5", "s6"] {
            assert!(json.contains(survivor), "newest spans retained: {json}");
        }
        for evicted in ["\"s0\"", "\"s1\"", "\"s2\"", "\"s3\""] {
            assert!(!json.contains(evicted), "oldest spans evicted: {json}");
        }
        assert!(json.contains("\"dropped\":4"));
    }

    #[test]
    fn chrome_trace_is_valid_json_with_non_decreasing_timestamps() {
        let recorder = TraceRecorder::new(16);
        // Deliberately out of start order, as cross-thread delivery
        // would produce.
        for start in [30u64, 10, 20, 40, 15] {
            recorder.record(&span(&format!("s{start}"), start));
        }
        let json = recorder.chrome_trace_json();
        validate_json(&json).expect("chrome trace parses");
        let mut last = f64::MIN;
        let mut seen = 0;
        for piece in json.split("\"ts\":") {
            let Some(num) = piece.split(',').next().and_then(|n| n.parse::<f64>().ok()) else {
                continue;
            };
            assert!(num >= last, "timestamps regressed: {num} after {last}");
            last = num;
            seen += 1;
        }
        assert_eq!(seen, 5, "every span exported exactly once");
    }
}
