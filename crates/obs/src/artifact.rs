//! Section-merging for shared JSON bench artifacts.
//!
//! `BENCH_obs.json` is written by several bench binaries (`speedup`,
//! `serve_load`, `obs_overhead`), each owning one top-level key. A
//! plain "write the whole file" would make whichever bench ran last
//! clobber the others, so this module implements a minimal top-level
//! JSON object merge: replace (or append) one key's value, preserve
//! every other key's text verbatim.

use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// Splits the body of a top-level JSON object into `(key, value-text)`
/// pairs, preserving each value's original text. Returns `None` when
/// the input is not a JSON object (callers then start fresh).
fn split_top_level(text: &str) -> Option<Vec<(String, String)>> {
    let text = text.trim();
    let body = text.strip_prefix('{')?.strip_suffix('}')?;
    let bytes = body.as_bytes();
    let mut pairs = Vec::new();
    let mut i = 0;
    loop {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            return Some(pairs);
        }
        // Key string.
        if bytes[i] != b'"' {
            return None;
        }
        let (key, after_key) = scan_string(body, i)?;
        i = after_key;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b':' {
            return None;
        }
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        // Value: scan to the top-level comma or end, tracking nesting.
        let value_start = i;
        let mut depth = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'"' => {
                    let (_, after) = scan_string(body, i)?;
                    i = after;
                    continue;
                }
                b'{' | b'[' => depth += 1,
                b'}' | b']' => depth = depth.checked_sub(1)?,
                b',' if depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        pairs.push((key, body[value_start..i].trim().to_owned()));
        if i < bytes.len() {
            i += 1; // skip the comma
        }
    }
}

/// Scans the JSON string starting at byte `start` (which must be a
/// `"`), honouring escapes. Returns the unescaped-enough key text
/// (escapes kept verbatim — keys here are plain identifiers) and the
/// index just past the closing quote.
fn scan_string(text: &str, start: usize) -> Option<(String, usize)> {
    let bytes = text.as_bytes();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some((text[start + 1..i].to_owned(), i + 1)),
            _ => i += 1,
        }
    }
    None
}

/// Returns `existing` (a top-level JSON object, or anything else —
/// then treated as empty) with `key` set to `value_json`, other keys
/// preserved verbatim. `value_json` must already be valid JSON text.
pub fn merge_section(existing: &str, key: &str, value_json: &str) -> String {
    let mut pairs = split_top_level(existing).unwrap_or_default();
    match pairs.iter_mut().find(|(k, _)| k == key) {
        Some(pair) => pair.1 = value_json.to_owned(),
        None => pairs.push((key.to_owned(), value_json.to_owned())),
    }
    let mut out = String::from("{\n");
    for (i, (k, v)) in pairs.iter().enumerate() {
        let _ = write!(out, "  \"{k}\": {v}");
        out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
    }
    out.push('}');
    out
}

/// Reads the JSON artifact at `path` (missing or malformed files are
/// treated as empty), merges `value_json` under `key` with
/// [`merge_section`], and writes it back followed by a newline.
pub fn update_artifact(path: &Path, key: &str, value_json: &str) -> io::Result<()> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let merged = merge_section(&existing, key, value_json);
    std::fs::write(path, merged + "\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_into_empty_creates_object() {
        let merged = merge_section("", "exec", "{\"a\": 1}");
        assert_eq!(merged, "{\n  \"exec\": {\"a\": 1}\n}");
    }

    #[test]
    fn merge_preserves_other_sections_verbatim() {
        let first = merge_section("", "exec", "{\"a\": [1, 2, {\"b\": \"x,y\"}]}");
        let second = merge_section(&first, "serve", "{\"p95_ms\": 1.5}");
        assert!(second.contains("\"exec\": {\"a\": [1, 2, {\"b\": \"x,y\"}]}"));
        assert!(second.contains("\"serve\": {\"p95_ms\": 1.5}"));
        // Replacing a section keeps the other intact.
        let third = merge_section(&second, "exec", "7");
        assert!(third.contains("\"exec\": 7"));
        assert!(third.contains("\"serve\": {\"p95_ms\": 1.5}"));
    }

    #[test]
    fn merge_handles_strings_with_braces_and_escapes() {
        let first = merge_section("", "a", "\"va{l\\\"ue,}\"");
        let second = merge_section(&first, "b", "2");
        assert!(second.contains("\"a\": \"va{l\\\"ue,}\""));
        assert!(second.contains("\"b\": 2"));
    }

    #[test]
    fn malformed_existing_content_is_replaced() {
        let merged = merge_section("not json at all", "k", "true");
        assert_eq!(merged, "{\n  \"k\": true\n}");
    }
}
