//! Section-merging for shared JSON bench artifacts.
//!
//! `BENCH_obs.json` is written by several bench binaries (`speedup`,
//! `serve_load`, `obs_overhead`), each owning one top-level key. A
//! plain "write the whole file" would make whichever bench ran last
//! clobber the others, so this module implements a minimal top-level
//! JSON object merge: replace (or append) one key's value, preserve
//! every other key's text verbatim.
//!
//! Updates are crash-safe and concurrency-safe: the merged document is
//! written to a temp file in the same directory and renamed into place
//! (readers never observe a torn artifact), and the read-modify-write
//! cycle holds a sibling `<name>.lock` advisory lock file so two bench
//! binaries merging different sections cannot lose each other's
//! update.

use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Splits the body of a top-level JSON object into `(key, value-text)`
/// pairs, preserving each value's original text. Returns `None` when
/// the input is not a JSON object (callers then start fresh).
fn split_top_level(text: &str) -> Option<Vec<(String, String)>> {
    let text = text.trim();
    let body = text.strip_prefix('{')?.strip_suffix('}')?;
    let bytes = body.as_bytes();
    let mut pairs = Vec::new();
    let mut i = 0;
    loop {
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() {
            return Some(pairs);
        }
        // Key string.
        if bytes[i] != b'"' {
            return None;
        }
        let (key, after_key) = scan_string(body, i)?;
        i = after_key;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        if i >= bytes.len() || bytes[i] != b':' {
            return None;
        }
        i += 1;
        while i < bytes.len() && bytes[i].is_ascii_whitespace() {
            i += 1;
        }
        // Value: scan to the top-level comma or end, tracking nesting.
        let value_start = i;
        let mut depth = 0usize;
        while i < bytes.len() {
            match bytes[i] {
                b'"' => {
                    let (_, after) = scan_string(body, i)?;
                    i = after;
                    continue;
                }
                b'{' | b'[' => depth += 1,
                b'}' | b']' => depth = depth.checked_sub(1)?,
                b',' if depth == 0 => break,
                _ => {}
            }
            i += 1;
        }
        pairs.push((key, body[value_start..i].trim().to_owned()));
        if i < bytes.len() {
            i += 1; // skip the comma
        }
    }
}

/// Scans the JSON string starting at byte `start` (which must be a
/// `"`), honouring escapes. Returns the unescaped-enough key text
/// (escapes kept verbatim — keys here are plain identifiers) and the
/// index just past the closing quote.
fn scan_string(text: &str, start: usize) -> Option<(String, usize)> {
    let bytes = text.as_bytes();
    let mut i = start + 1;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' => i += 2,
            b'"' => return Some((text[start + 1..i].to_owned(), i + 1)),
            _ => i += 1,
        }
    }
    None
}

/// Returns `existing` (a top-level JSON object, or anything else —
/// then treated as empty) with `key` set to `value_json`, other keys
/// preserved verbatim. `value_json` must already be valid JSON text.
pub fn merge_section(existing: &str, key: &str, value_json: &str) -> String {
    let mut pairs = split_top_level(existing).unwrap_or_default();
    match pairs.iter_mut().find(|(k, _)| k == key) {
        Some(pair) => pair.1 = value_json.to_owned(),
        None => pairs.push((key.to_owned(), value_json.to_owned())),
    }
    let mut out = String::from("{\n");
    for (i, (k, v)) in pairs.iter().enumerate() {
        let _ = write!(out, "  \"{k}\": {v}");
        out.push_str(if i + 1 < pairs.len() { ",\n" } else { "\n" });
    }
    out.push('}');
    out
}

/// Monotonic counter distinguishing concurrent temp files within one
/// process (the pid distinguishes processes).
static TEMP_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Writes `contents` to `path` atomically: the bytes land in a
/// same-directory temp file first and are renamed over `path`, so a
/// crash mid-write leaves either the old artifact or the new one,
/// never a torn mixture.
pub fn write_atomic(path: &Path, contents: &str) -> io::Result<()> {
    let name = path.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, "artifact path has no file name")
    })?;
    let tmp = path.with_file_name(format!(
        ".{name}.tmp.{}.{}",
        std::process::id(),
        TEMP_COUNTER.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::write(&tmp, contents)?;
    std::fs::rename(&tmp, path).inspect_err(|_| {
        let _ = std::fs::remove_file(&tmp);
    })
}

/// An advisory lock held as a sibling `<name>.lock` file; created with
/// `create_new` so exactly one holder wins, removed on drop.
struct ArtifactLock {
    path: PathBuf,
}

impl ArtifactLock {
    /// Acquires the lock, waiting with backoff. A lock older than the
    /// retry budget is presumed stale (its holder crashed between
    /// create and remove) and is broken: both contenders then write
    /// atomically, so the worst case is one lost section update, never
    /// a torn file.
    fn acquire(artifact: &Path) -> io::Result<ArtifactLock> {
        let name = artifact.file_name().and_then(|n| n.to_str()).ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "artifact path has no file name")
        })?;
        let path = artifact.with_file_name(format!("{name}.lock"));
        for attempt in 0..500u32 {
            match std::fs::OpenOptions::new().write(true).create_new(true).open(&path) {
                Ok(_) => return Ok(ArtifactLock { path }),
                Err(e) if e.kind() == io::ErrorKind::AlreadyExists => {
                    if attempt == 499 {
                        let _ = std::fs::remove_file(&path);
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(e) => return Err(e),
            }
        }
        std::fs::OpenOptions::new().write(true).create(true).truncate(true).open(&path)?;
        Ok(ArtifactLock { path })
    }
}

impl Drop for ArtifactLock {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Reads the JSON artifact at `path` (missing or malformed files are
/// treated as empty), merges `value_json` under `key` with
/// [`merge_section`], and writes it back followed by a newline.
///
/// The whole read-modify-write cycle runs under an advisory
/// `<name>.lock` file and the final write is atomic
/// (see [`write_atomic`]), so concurrent updaters of *different*
/// sections all land and readers never see a torn document.
pub fn update_artifact(path: &Path, key: &str, value_json: &str) -> io::Result<()> {
    let _lock = ArtifactLock::acquire(path)?;
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let merged = merge_section(&existing, key, value_json);
    write_atomic(path, &(merged + "\n"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_into_empty_creates_object() {
        let merged = merge_section("", "exec", "{\"a\": 1}");
        assert_eq!(merged, "{\n  \"exec\": {\"a\": 1}\n}");
    }

    #[test]
    fn merge_preserves_other_sections_verbatim() {
        let first = merge_section("", "exec", "{\"a\": [1, 2, {\"b\": \"x,y\"}]}");
        let second = merge_section(&first, "serve", "{\"p95_ms\": 1.5}");
        assert!(second.contains("\"exec\": {\"a\": [1, 2, {\"b\": \"x,y\"}]}"));
        assert!(second.contains("\"serve\": {\"p95_ms\": 1.5}"));
        // Replacing a section keeps the other intact.
        let third = merge_section(&second, "exec", "7");
        assert!(third.contains("\"exec\": 7"));
        assert!(third.contains("\"serve\": {\"p95_ms\": 1.5}"));
    }

    #[test]
    fn merge_handles_strings_with_braces_and_escapes() {
        let first = merge_section("", "a", "\"va{l\\\"ue,}\"");
        let second = merge_section(&first, "b", "2");
        assert!(second.contains("\"a\": \"va{l\\\"ue,}\""));
        assert!(second.contains("\"b\": 2"));
    }

    #[test]
    fn malformed_existing_content_is_replaced() {
        let merged = merge_section("not json at all", "k", "true");
        assert_eq!(merged, "{\n  \"k\": true\n}");
    }

    #[test]
    fn concurrent_merges_of_distinct_sections_all_land() {
        let path = std::env::temp_dir()
            .join(format!("wino_artifact_concurrent_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        const WRITERS: usize = 8;
        const ROUNDS: usize = 10;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let path = &path;
                scope.spawn(move || {
                    for round in 0..ROUNDS {
                        update_artifact(path, &format!("writer{w}"), &format!("{round}"))
                            .expect("merge under contention");
                    }
                });
            }
        });
        let body = std::fs::read_to_string(&path).expect("artifact exists");
        let _ = std::fs::remove_file(&path);
        crate::json::validate_json(&body).unwrap_or_else(|e| panic!("torn artifact: {e}\n{body}"));
        for w in 0..WRITERS {
            let expected = format!("\"writer{w}\": {}", ROUNDS - 1);
            assert!(body.contains(&expected), "lost update for writer {w}:\n{body}");
        }
    }

    #[test]
    fn write_atomic_replaces_and_leaves_no_temp_files() {
        let dir = std::env::temp_dir().join(format!("wino_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("artifact.json");
        write_atomic(&path, "{\"v\": 1}\n").expect("first write");
        write_atomic(&path, "{\"v\": 2}\n").expect("overwrite");
        assert_eq!(std::fs::read_to_string(&path).expect("readable"), "{\"v\": 2}\n");
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .expect("dir listable")
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "temp files leaked: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
