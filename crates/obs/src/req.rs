//! Request-scoped causal tracing and the always-on flight recorder.
//!
//! [`ReqEvent`] is the event vocabulary of one request's life through
//! the sharded serving layer: admitted → enqueued → batched (possibly
//! stolen shard→shard) *or* join@layer-k (possibly with catch-up
//! passes) → resolved/failed, with panic-retry and shed as the
//! exceptional paths. Events carry the serving layer's existing seq
//! ids and a caller-supplied timestamp — virtual or wall clock, the
//! trace machinery never reads time itself, so a discrete-event
//! simulation and a threaded server produce the same shape of trace.
//!
//! Two sinks consume the stream:
//!
//! * [`TraceIndex`] — a [`Recorder`] that reassembles events into
//!   per-request timelines, verifies their causal shape
//!   ([`TraceIndex::verify`]: exactly one terminal event per seq,
//!   steals carry both shard ids, joins carry the join layer, …) and
//!   exports sampled timelines as Chrome trace JSON. It is fed through
//!   the global [`record_req`](crate::record_req) hook, so it costs
//!   one relaxed atomic load per event when tracing is off.
//! * [`FlightRecorder`] — the always-on black box: a bounded,
//!   lock-light per-lane ring of the most recent events, explicitly
//!   owned by the serving layer (one lane per shard) and dumped to a
//!   JSON artifact on fault, shed, or drain.

use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::io;
use std::path::Path;
use std::sync::Mutex;
use std::time::Duration;

use crate::artifact::write_atomic;
use crate::recorder::Recorder;
use crate::span::SpanRecord;

/// What happened to a request at one instant of its life.
///
/// Variants are `Copy` and allocation-free so emission sites never
/// touch the heap; class labels are `&'static str` (the serving
/// layer's priority names).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReqEventKind {
    /// The request passed admission control.
    Admitted {
        /// Priority-class label ("high", "normal", "low").
        class: &'static str,
    },
    /// The request entered its home shard's queue.
    Enqueued {
        /// Home shard index.
        shard: u32,
    },
    /// The request left the queue inside a released batch.
    Batched {
        /// Shard whose queue released the batch (the home shard).
        shard: u32,
        /// Lane count of the released batch.
        lanes: u32,
    },
    /// The batch carrying this request was stolen across shards.
    Stolen {
        /// Home shard the batch was released on.
        from: u32,
        /// Shard whose worker actually executes it.
        to: u32,
    },
    /// The request joined an in-flight batch at a layer boundary.
    Join {
        /// The layer boundary it joined at (≥ 1).
        layer: u32,
    },
    /// Catch-up passes replayed the joiner's missed layer prefix.
    CatchUp {
        /// Number of missed layers replayed.
        layers: u32,
    },
    /// The lane's batch panicked; the request is retried solo.
    PanicRetry,
    /// Admission control refused a request (queue full or SLO shed).
    ///
    /// Sheds happen before a seq id is assigned, so shed events carry
    /// seq 0 by convention and are tallied, never indexed per-request.
    Shed,
    /// The request completed successfully. Terminal.
    Resolved,
    /// The request failed (double fault after solo retry). Terminal.
    Failed,
}

impl ReqEventKind {
    /// Stable lowercase name of the event kind.
    pub fn name(&self) -> &'static str {
        match self {
            ReqEventKind::Admitted { .. } => "admitted",
            ReqEventKind::Enqueued { .. } => "enqueued",
            ReqEventKind::Batched { .. } => "batched",
            ReqEventKind::Stolen { .. } => "stolen",
            ReqEventKind::Join { .. } => "join",
            ReqEventKind::CatchUp { .. } => "catch-up",
            ReqEventKind::PanicRetry => "panic-retry",
            ReqEventKind::Shed => "shed",
            ReqEventKind::Resolved => "resolved",
            ReqEventKind::Failed => "failed",
        }
    }

    /// True for the two terminal kinds, [`Resolved`](Self::Resolved)
    /// and [`Failed`](Self::Failed).
    pub fn is_terminal(&self) -> bool {
        matches!(self, ReqEventKind::Resolved | ReqEventKind::Failed)
    }
}

/// One event of one request's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqEvent {
    /// The serving layer's request seq id (0 for [`ReqEventKind::Shed`]).
    pub seq: u64,
    /// When it happened, on whatever clock the emitter runs.
    pub at: Duration,
    /// What happened.
    pub kind: ReqEventKind,
}

fn us(d: Duration) -> f64 {
    d.as_secs_f64() * 1e6
}

impl ReqEvent {
    /// Builds an event.
    pub fn new(seq: u64, at: Duration, kind: ReqEventKind) -> Self {
        ReqEvent { seq, at, kind }
    }

    /// Serializes the event as one flat JSON object.
    pub fn to_json(&self) -> String {
        let mut j = format!(
            "{{\"seq\": {}, \"at_us\": {:.3}, \"kind\": \"{}\"",
            self.seq,
            us(self.at),
            self.kind.name()
        );
        match self.kind {
            ReqEventKind::Admitted { class } => {
                let _ = write!(j, ", \"class\": \"{class}\"");
            }
            ReqEventKind::Enqueued { shard } => {
                let _ = write!(j, ", \"shard\": {shard}");
            }
            ReqEventKind::Batched { shard, lanes } => {
                let _ = write!(j, ", \"shard\": {shard}, \"lanes\": {lanes}");
            }
            ReqEventKind::Stolen { from, to } => {
                let _ = write!(j, ", \"from\": {from}, \"to\": {to}");
            }
            ReqEventKind::Join { layer } => {
                let _ = write!(j, ", \"layer\": {layer}");
            }
            ReqEventKind::CatchUp { layers } => {
                let _ = write!(j, ", \"layers\": {layers}");
            }
            ReqEventKind::PanicRetry
            | ReqEventKind::Shed
            | ReqEventKind::Resolved
            | ReqEventKind::Failed => {}
        }
        j.push('}');
        j
    }
}

/// Aggregate counts over a verified [`TraceIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceStats {
    /// Distinct request timelines (admitted seqs).
    pub requests: usize,
    /// Total indexed events across all timelines.
    pub events: usize,
    /// Requests whose batch was stolen at least once.
    pub steals: usize,
    /// Requests that joined an in-flight batch mid-execution.
    pub joins: usize,
    /// Requests that recorded catch-up passes.
    pub catch_ups: usize,
    /// Solo-retry events across all timelines.
    pub panic_retries: usize,
    /// Requests whose terminal event is `Resolved`.
    pub resolved: usize,
    /// Requests whose terminal event is `Failed`.
    pub failed: usize,
    /// Shed (refused-at-admission) events; these never get a timeline.
    pub sheds: u64,
}

#[derive(Default)]
struct TraceState {
    by_seq: BTreeMap<u64, Vec<ReqEvent>>,
    sheds: u64,
}

/// A [`Recorder`] sink that indexes the request-event stream into
/// per-request timelines.
///
/// Attach with [`set_recorder`](crate::set_recorder) +
/// [`enable`](crate::enable); every [`record_req`](crate::record_req)
/// call lands here in emission order, which for a single request is
/// causal order (each request's events are ordered by the queue and
/// execution locks they pass through). Span records are ignored.
#[derive(Default)]
pub struct TraceIndex {
    state: Mutex<TraceState>,
}

impl TraceIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes one event directly (the [`Recorder`] path calls this).
    ///
    /// [`Shed`](ReqEventKind::Shed) events are tallied but not
    /// indexed: a shed request never received a seq id.
    pub fn record_event(&self, event: &ReqEvent) {
        let mut state = self.state.lock().expect("trace index poisoned");
        if matches!(event.kind, ReqEventKind::Shed) {
            state.sheds += 1;
        } else {
            state.by_seq.entry(event.seq).or_default().push(*event);
        }
    }

    /// Number of distinct request timelines indexed so far.
    pub fn requests(&self) -> usize {
        self.state.lock().expect("trace index poisoned").by_seq.len()
    }

    /// Number of shed events tallied so far.
    pub fn sheds(&self) -> u64 {
        self.state.lock().expect("trace index poisoned").sheds
    }

    /// The timeline of one seq, in emission order, if indexed.
    pub fn timeline(&self, seq: u64) -> Option<Vec<ReqEvent>> {
        self.state.lock().expect("trace index poisoned").by_seq.get(&seq).cloned()
    }

    /// All indexed seq ids, ascending.
    pub fn seqs(&self) -> Vec<u64> {
        self.state.lock().expect("trace index poisoned").by_seq.keys().copied().collect()
    }

    /// Verifies every timeline against the causal state machine and
    /// returns aggregate counts, or a description of the first
    /// violation.
    ///
    /// Per timeline (events in emission order):
    ///
    /// * the first event is `Admitted`, followed by exactly one
    ///   `Enqueued`;
    /// * the request is dispatched exactly once: either `Batched`
    ///   (a released batch) or `Join` (a mid-flight joiner), never
    ///   both;
    /// * `Stolen` only follows `Batched`, with `from != to` and
    ///   `from` equal to the batching shard (stolen requests carry
    ///   both shard ids);
    /// * `Join` carries a layer ≥ 1; `CatchUp` only follows `Join`;
    /// * `PanicRetry` only after dispatch;
    /// * exactly one terminal event (`Resolved`/`Failed`), last;
    /// * timestamps never decrease along the timeline.
    pub fn verify(&self) -> Result<TraceStats, String> {
        let state = self.state.lock().expect("trace index poisoned");
        let mut stats = TraceStats { sheds: state.sheds, ..TraceStats::default() };
        for (seq, events) in &state.by_seq {
            verify_timeline(*seq, events, &mut stats)?;
        }
        stats.requests = state.by_seq.len();
        Ok(stats)
    }

    /// Exports up to `max_requests` timelines (lowest seqs first) as
    /// Chrome trace JSON: one `"X"` slice per request spanning
    /// first→last event (tid = seq), plus an `"i"` instant per event.
    pub fn chrome_trace_json(&self, max_requests: usize) -> String {
        let state = self.state.lock().expect("trace index poisoned");
        let mut out = String::from("{\"traceEvents\":[");
        let mut first_out = true;
        for (seq, events) in state.by_seq.iter().take(max_requests) {
            let (Some(first), Some(last)) = (events.first(), events.last()) else {
                continue;
            };
            if !first_out {
                out.push(',');
            }
            first_out = false;
            let _ = write!(
                out,
                "{{\"name\":\"request\",\"cat\":\"req\",\"ph\":\"X\",\"pid\":1,\"tid\":{seq},\
                 \"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"events\":{}}}}}",
                us(first.at),
                us(last.at.saturating_sub(first.at)),
                events.len()
            );
            for ev in events {
                let _ = write!(
                    out,
                    ",{{\"name\":\"{}\",\"cat\":\"req\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\
                     \"tid\":{seq},\"ts\":{:.3},\"args\":{}}}",
                    ev.kind.name(),
                    us(ev.at),
                    ev.to_json()
                );
            }
        }
        let _ = write!(
            out,
            "],\"displayTimeUnit\":\"ms\",\"otherData\":{{\"requests\":{},\"sheds\":{}}}}}",
            state.by_seq.len(),
            state.sheds
        );
        out
    }
}

fn verify_timeline(seq: u64, events: &[ReqEvent], stats: &mut TraceStats) -> Result<(), String> {
    let fail = |i: usize, what: &str| -> String {
        format!("seq {seq}, event {i}: {what} (timeline: {:?})", events)
    };
    if events.is_empty() {
        return Err(format!("seq {seq}: empty timeline"));
    }
    let mut enqueued = false;
    let mut batched_on: Option<u32> = None;
    let mut joined = false;
    let mut stolen = false;
    let mut caught_up = false;
    let mut retries = 0usize;
    let mut terminal: Option<ReqEventKind> = None;
    let mut last_at = Duration::ZERO;
    for (i, ev) in events.iter().enumerate() {
        if ev.seq != seq {
            return Err(fail(i, "event indexed under a foreign seq"));
        }
        if terminal.is_some() {
            return Err(fail(i, "event after the terminal event"));
        }
        if ev.at < last_at {
            return Err(fail(i, "timestamp decreased along the timeline"));
        }
        last_at = ev.at;
        match ev.kind {
            ReqEventKind::Admitted { .. } => {
                if i != 0 {
                    return Err(fail(i, "admitted is not the first event"));
                }
            }
            ReqEventKind::Enqueued { .. } => {
                if i == 0 {
                    return Err(fail(i, "enqueued before admitted"));
                }
                if enqueued || batched_on.is_some() || joined {
                    return Err(fail(i, "enqueued twice or after dispatch"));
                }
                enqueued = true;
            }
            ReqEventKind::Batched { shard, .. } => {
                if !enqueued || joined || batched_on.is_some() {
                    return Err(fail(i, "batched without enqueue, or dispatched twice"));
                }
                batched_on = Some(shard);
            }
            ReqEventKind::Stolen { from, to } => {
                let Some(home) = batched_on else {
                    return Err(fail(i, "stolen before batched"));
                };
                if from == to {
                    return Err(fail(i, "stolen with from == to"));
                }
                if from != home {
                    return Err(fail(i, "stolen `from` disagrees with the batching shard"));
                }
                stolen = true;
            }
            ReqEventKind::Join { layer } => {
                if !enqueued || batched_on.is_some() || joined {
                    return Err(fail(i, "join without enqueue, or dispatched twice"));
                }
                if layer == 0 {
                    return Err(fail(i, "join at layer 0 (joiners enter at a boundary >= 1)"));
                }
                joined = true;
            }
            ReqEventKind::CatchUp { .. } => {
                if !joined {
                    return Err(fail(i, "catch-up without a join"));
                }
                caught_up = true;
            }
            ReqEventKind::PanicRetry => {
                if batched_on.is_none() && !joined {
                    return Err(fail(i, "panic-retry before dispatch"));
                }
                retries += 1;
            }
            ReqEventKind::Shed => {
                return Err(fail(i, "shed event indexed under a seq"));
            }
            ReqEventKind::Resolved | ReqEventKind::Failed => {
                if batched_on.is_none() && !joined {
                    return Err(fail(i, "terminal event before dispatch"));
                }
                terminal = Some(ev.kind);
            }
        }
    }
    match terminal {
        Some(ReqEventKind::Resolved) => stats.resolved += 1,
        Some(ReqEventKind::Failed) => stats.failed += 1,
        _ => return Err(format!("seq {seq}: no terminal event (timeline: {events:?})")),
    }
    if !enqueued {
        return Err(format!("seq {seq}: never enqueued"));
    }
    stats.events += events.len();
    if stolen {
        stats.steals += 1;
    }
    if joined {
        stats.joins += 1;
    }
    if caught_up {
        stats.catch_ups += 1;
    }
    stats.panic_retries += retries;
    Ok(())
}

impl Recorder for TraceIndex {
    fn record(&self, _span: &SpanRecord) {}

    fn record_req(&self, event: &ReqEvent) {
        self.record_event(event);
    }
}

struct FlightLane {
    ring: VecDeque<ReqEvent>,
    dropped: u64,
}

/// The always-on black box: one bounded event ring per lane
/// (the serving layer uses one lane per shard).
///
/// Recording is a single short `Mutex` lock on the event's own lane —
/// no global state, no allocation past the ring's initial capacity —
/// so it stays on even when tracing is disabled. When a ring is full
/// the oldest event is dropped and counted, keeping the newest N.
pub struct FlightRecorder {
    lanes: Vec<Mutex<FlightLane>>,
    capacity: usize,
}

impl FlightRecorder {
    /// Creates a recorder with `lanes` rings of `capacity` events each
    /// (both clamped to at least 1).
    pub fn new(lanes: usize, capacity: usize) -> Self {
        let capacity = capacity.max(1);
        FlightRecorder {
            lanes: (0..lanes.max(1))
                .map(|_| {
                    Mutex::new(FlightLane { ring: VecDeque::with_capacity(capacity), dropped: 0 })
                })
                .collect(),
            capacity,
        }
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Ring capacity per lane.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records one event into `lane` (wrapped modulo the lane count).
    pub fn record(&self, lane: usize, event: ReqEvent) {
        let mut lane = self.lanes[lane % self.lanes.len()].lock().expect("flight lane poisoned");
        if lane.ring.len() == self.capacity {
            lane.ring.pop_front();
            lane.dropped += 1;
        }
        lane.ring.push_back(event);
    }

    /// Total events currently held across all lanes.
    pub fn len(&self) -> usize {
        self.lanes.iter().map(|l| l.lock().expect("flight lane poisoned").ring.len()).sum()
    }

    /// True when no lane holds any event.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serializes the black box: the dump cause plus, per lane, its
    /// drop count and the retained events oldest-first.
    pub fn dump_json(&self, cause: &str) -> String {
        let mut out = format!(
            "{{\n  \"cause\": \"{}\",\n  \"capacity_per_lane\": {},\n  \"lanes\": [\n",
            crate::report::json_escape(cause),
            self.capacity
        );
        for (i, lane) in self.lanes.iter().enumerate() {
            let lane = lane.lock().expect("flight lane poisoned");
            let _ =
                write!(out, "    {{\"lane\": {i}, \"dropped\": {}, \"events\": [", lane.dropped);
            for (k, ev) in lane.ring.iter().enumerate() {
                if k > 0 {
                    out.push_str(", ");
                }
                out.push_str(&ev.to_json());
            }
            out.push_str("]}");
            out.push_str(if i + 1 < self.lanes.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Writes [`dump_json`](Self::dump_json) to `path` atomically
    /// (temp file + rename), so a crash mid-dump never leaves a torn
    /// black box.
    pub fn dump_to(&self, path: &Path, cause: &str) -> io::Result<()> {
        write_atomic(path, &self.dump_json(cause))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::validate_json;

    fn at(ms: u64) -> Duration {
        Duration::from_millis(ms)
    }

    fn plain_timeline(idx: &TraceIndex, seq: u64) {
        idx.record_event(&ReqEvent::new(seq, at(1), ReqEventKind::Admitted { class: "normal" }));
        idx.record_event(&ReqEvent::new(seq, at(1), ReqEventKind::Enqueued { shard: 0 }));
        idx.record_event(&ReqEvent::new(seq, at(2), ReqEventKind::Batched { shard: 0, lanes: 2 }));
        idx.record_event(&ReqEvent::new(seq, at(5), ReqEventKind::Resolved));
    }

    #[test]
    fn verify_accepts_the_full_vocabulary() {
        let idx = TraceIndex::new();
        plain_timeline(&idx, 1);
        // A stolen, retried request.
        idx.record_event(&ReqEvent::new(2, at(1), ReqEventKind::Admitted { class: "high" }));
        idx.record_event(&ReqEvent::new(2, at(1), ReqEventKind::Enqueued { shard: 1 }));
        idx.record_event(&ReqEvent::new(2, at(2), ReqEventKind::Batched { shard: 1, lanes: 1 }));
        idx.record_event(&ReqEvent::new(2, at(2), ReqEventKind::Stolen { from: 1, to: 3 }));
        idx.record_event(&ReqEvent::new(2, at(3), ReqEventKind::PanicRetry));
        idx.record_event(&ReqEvent::new(2, at(6), ReqEventKind::Resolved));
        // A mid-flight joiner with catch-up, ending in failure.
        idx.record_event(&ReqEvent::new(3, at(2), ReqEventKind::Admitted { class: "low" }));
        idx.record_event(&ReqEvent::new(3, at(2), ReqEventKind::Enqueued { shard: 0 }));
        idx.record_event(&ReqEvent::new(3, at(3), ReqEventKind::Join { layer: 4 }));
        idx.record_event(&ReqEvent::new(3, at(6), ReqEventKind::CatchUp { layers: 4 }));
        idx.record_event(&ReqEvent::new(3, at(7), ReqEventKind::Failed));
        // Two sheds, tallied but never indexed.
        idx.record_event(&ReqEvent::new(0, at(4), ReqEventKind::Shed));
        idx.record_event(&ReqEvent::new(0, at(4), ReqEventKind::Shed));

        let stats = idx.verify().expect("all timelines causal");
        assert_eq!(stats.requests, 3);
        assert_eq!(stats.steals, 1);
        assert_eq!(stats.joins, 1);
        assert_eq!(stats.catch_ups, 1);
        assert_eq!(stats.panic_retries, 1);
        assert_eq!(stats.resolved, 2);
        assert_eq!(stats.failed, 1);
        assert_eq!(stats.sheds, 2);
        assert_eq!(idx.timeline(2).expect("indexed").len(), 6);
    }

    #[test]
    fn verify_rejects_missing_terminal() {
        let idx = TraceIndex::new();
        idx.record_event(&ReqEvent::new(7, at(1), ReqEventKind::Admitted { class: "normal" }));
        idx.record_event(&ReqEvent::new(7, at(1), ReqEventKind::Enqueued { shard: 0 }));
        idx.record_event(&ReqEvent::new(7, at(2), ReqEventKind::Batched { shard: 0, lanes: 1 }));
        let err = idx.verify().expect_err("no terminal event");
        assert!(err.contains("no terminal event"), "{err}");
    }

    #[test]
    fn verify_rejects_events_after_terminal_and_double_dispatch() {
        let idx = TraceIndex::new();
        plain_timeline(&idx, 1);
        idx.record_event(&ReqEvent::new(1, at(6), ReqEventKind::Resolved));
        let err = idx.verify().expect_err("double terminal");
        assert!(err.contains("after the terminal"), "{err}");

        let idx = TraceIndex::new();
        idx.record_event(&ReqEvent::new(4, at(1), ReqEventKind::Admitted { class: "normal" }));
        idx.record_event(&ReqEvent::new(4, at(1), ReqEventKind::Enqueued { shard: 0 }));
        idx.record_event(&ReqEvent::new(4, at(2), ReqEventKind::Batched { shard: 0, lanes: 1 }));
        idx.record_event(&ReqEvent::new(4, at(3), ReqEventKind::Join { layer: 1 }));
        let err = idx.verify().expect_err("batched then joined");
        assert!(err.contains("dispatched twice"), "{err}");
    }

    #[test]
    fn verify_rejects_inconsistent_steals() {
        let idx = TraceIndex::new();
        idx.record_event(&ReqEvent::new(9, at(1), ReqEventKind::Admitted { class: "normal" }));
        idx.record_event(&ReqEvent::new(9, at(1), ReqEventKind::Enqueued { shard: 2 }));
        idx.record_event(&ReqEvent::new(9, at(2), ReqEventKind::Batched { shard: 2, lanes: 1 }));
        idx.record_event(&ReqEvent::new(9, at(2), ReqEventKind::Stolen { from: 1, to: 0 }));
        idx.record_event(&ReqEvent::new(9, at(3), ReqEventKind::Resolved));
        let err = idx.verify().expect_err("from must match the batching shard");
        assert!(err.contains("disagrees"), "{err}");
    }

    #[test]
    fn chrome_export_is_valid_json_and_samples_lowest_seqs() {
        let idx = TraceIndex::new();
        for seq in 1..=5 {
            plain_timeline(&idx, seq);
        }
        let json = idx.chrome_trace_json(3);
        validate_json(&json).expect("chrome trace parses");
        assert!(json.contains("\"tid\":3"));
        assert!(!json.contains("\"tid\":4"), "sampling keeps the lowest seqs");
    }

    #[test]
    fn flight_recorder_keeps_the_newest_events_per_lane() {
        let fr = FlightRecorder::new(2, 4);
        for i in 0..10u64 {
            fr.record(
                (i % 2) as usize,
                ReqEvent::new(i, at(i), ReqEventKind::Batched { shard: (i % 2) as u32, lanes: 1 }),
            );
        }
        assert_eq!(fr.len(), 8);
        let dump = fr.dump_json("test");
        validate_json(&dump).expect("flight dump parses");
        assert!(dump.contains("\"cause\": \"test\""));
        assert!(dump.contains("\"dropped\": 1"));
        assert!(dump.contains("\"seq\": 9"), "newest survives");
        assert!(!dump.contains("\"seq\": 0,"), "oldest evicted");
    }

    #[test]
    fn flight_dump_to_writes_the_artifact() {
        let fr = FlightRecorder::new(1, 8);
        fr.record(0, ReqEvent::new(1, at(1), ReqEventKind::Resolved));
        let path = std::env::temp_dir().join(format!("wino_flight_{}.json", std::process::id()));
        fr.dump_to(&path, "drain").expect("dump writes");
        let body = std::fs::read_to_string(&path).expect("artifact readable");
        let _ = std::fs::remove_file(&path);
        validate_json(&body).expect("artifact parses");
        assert!(body.contains("\"cause\": \"drain\""));
    }
}
