//! Metrics exposition: a minimal metric-family model with Prometheus
//! text and JSON renders, unified with profile snapshots behind
//! [`ObsReport`].

use std::fmt::Write as _;

use crate::recorder::ProfileSnapshot;

/// Escapes a string for embedding inside a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// The Prometheus metric type of a family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value.
    Gauge,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One labelled sample within a [`MetricFamily`].
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSample {
    /// Label pairs, e.g. `[("model", "vgg16d-f32")]`. May be empty.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

/// A named metric with a help string and labelled samples — the unit
/// of Prometheus exposition.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricFamily {
    /// Metric name (`snake_case`, conventionally prefixed `wino_`).
    pub name: String,
    /// One-line human description.
    pub help: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// The samples.
    pub samples: Vec<MetricSample>,
}

impl MetricFamily {
    /// Convenience constructor for a single unlabelled sample.
    pub fn scalar(name: &str, help: &str, kind: MetricKind, value: f64) -> Self {
        Self {
            name: name.to_owned(),
            help: help.to_owned(),
            kind,
            samples: vec![MetricSample { labels: Vec::new(), value }],
        }
    }
}

/// Formats a float the way both exposition renders want it: integral
/// values print without a fractional part, everything else with full
/// round-trip precision.
fn format_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

/// The single entry point for exposition: metric families plus an
/// optional phase profile, rendered as Prometheus text or JSON.
/// Benches merge one of these per subsystem into `BENCH_obs.json`
/// with [`crate::update_artifact`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObsReport {
    /// The metric families to expose.
    pub metrics: Vec<MetricFamily>,
    /// Aggregated span profile, when one was recorded.
    pub profile: Option<ProfileSnapshot>,
}

impl ObsReport {
    /// Renders the metric families in the Prometheus text exposition
    /// format (`# HELP` / `# TYPE` headers, one line per sample).
    /// The profile is not part of the text format — export it with
    /// [`ProfileSnapshot::render_tree`] or the JSON render.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        for family in &self.metrics {
            let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
            for sample in &family.samples {
                if sample.labels.is_empty() {
                    let _ = writeln!(out, "{} {}", family.name, format_value(sample.value));
                } else {
                    let labels = sample
                        .labels
                        .iter()
                        .map(|(k, v)| format!("{k}=\"{}\"", prometheus_label_escape(v)))
                        .collect::<Vec<_>>()
                        .join(",");
                    let _ = writeln!(
                        out,
                        "{}{{{}}} {}",
                        family.name,
                        labels,
                        format_value(sample.value)
                    );
                }
            }
        }
        out
    }

    /// Renders the whole report (metrics and profile) as one JSON
    /// object: `{"metrics": [...], "profile": [...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"metrics\":[");
        for (i, family) in self.metrics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"help\":\"{}\",\"kind\":\"{}\",\"samples\":[",
                json_escape(&family.name),
                json_escape(&family.help),
                family.kind.as_str(),
            );
            for (j, sample) in family.samples.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str("{\"labels\":{");
                for (k, (key, value)) in sample.labels.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "\"{}\":\"{}\"", json_escape(key), json_escape(value));
                }
                let _ = write!(out, "}},\"value\":{}}}", format_value(sample.value));
            }
            out.push_str("]}");
        }
        out.push(']');
        if let Some(profile) = &self.profile {
            let _ = write!(out, ",\"profile\":{}", profile.to_json());
        }
        out.push('}');
        out
    }
}

/// Escapes a Prometheus label value (backslash, quote, newline).
fn prometheus_label_escape(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}
