//! # wino-obs
//!
//! Dependency-free observability for the winofpga workspace: tracing
//! spans, an aggregating phase profiler, a bounded trace recorder that
//! exports Chrome `trace_event` JSON, and a metrics exposition layer
//! (Prometheus text + JSON) behind one [`ObsReport`] entry point.
//!
//! ## Design
//!
//! The hot path is the *disabled* path. [`Span::enter`] performs a
//! single relaxed atomic load when nothing is listening — no
//! allocation, no locking, no timestamp. Work is only done when a sink
//! is active, which happens in exactly two ways:
//!
//! * **Global tracing** ([`enable`]) dispatches every completed span to
//!   the installed [`Recorder`] (see [`set_recorder`]). This is what
//!   benches use to build profile trees and Chrome traces.
//! * **Thread-local collection** ([`collect`]) captures the spans that
//!   complete on the current thread during a closure. This is how
//!   `wino-exec` fills `LayerReport::phase_millis` without turning
//!   tracing on for the whole process.
//!
//! Span stacks are thread-local, so self-time (total minus time spent
//! in child spans *on the same thread*) needs no synchronisation.
//! Cross-thread intervals that cannot be expressed as a lexical scope
//! — e.g. a serve request's queue wait, measured between threads — are
//! reported with [`record_interval`].
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use wino_obs::{collect, AggregatingProfiler, Span};
//!
//! // Thread-local collection: no global state touched.
//! let ((), spans) = collect(|| {
//!     let _outer = Span::enter("demo", "outer");
//!     let _inner = Span::enter("demo", "inner");
//! });
//! assert_eq!(spans.len(), 2);
//! assert_eq!(spans[0].path, "outer/inner"); // inner closes first
//!
//! // Global tracing into an aggregating profiler.
//! let profiler = Arc::new(AggregatingProfiler::new());
//! wino_obs::set_recorder(profiler.clone());
//! wino_obs::enable();
//! {
//!     let _span = Span::enter("demo", "traced");
//! }
//! wino_obs::disable();
//! wino_obs::clear_recorder();
//! assert_eq!(profiler.snapshot().entries.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod artifact;
mod recorder;
mod report;
mod span;

pub use artifact::{merge_section, update_artifact};
pub use recorder::{AggregatingProfiler, ProfileEntry, ProfileSnapshot, Recorder, TraceRecorder};
pub use report::{json_escape, MetricFamily, MetricKind, MetricSample, ObsReport};
pub use span::{
    clear_recorder, collect, disable, enable, is_enabled, record_interval, set_recorder, Span,
    SpanRecord,
};
