//! # wino-obs
//!
//! Dependency-free observability for the winofpga workspace: tracing
//! spans, an aggregating phase profiler, a bounded trace recorder that
//! exports Chrome `trace_event` JSON, and a metrics exposition layer
//! (Prometheus text + JSON) behind one [`ObsReport`] entry point.
//!
//! ## Design
//!
//! The hot path is the *disabled* path. [`Span::enter`] performs a
//! single relaxed atomic load when nothing is listening — no
//! allocation, no locking, no timestamp. Work is only done when a sink
//! is active, which happens in exactly two ways:
//!
//! * **Global tracing** ([`enable`]) dispatches every completed span to
//!   the installed [`Recorder`] (see [`set_recorder`]). This is what
//!   benches use to build profile trees and Chrome traces.
//! * **Thread-local collection** ([`collect`]) captures the spans that
//!   complete on the current thread during a closure. This is how
//!   `wino-exec` fills `LayerReport::phase_millis` without turning
//!   tracing on for the whole process.
//!
//! Span stacks are thread-local, so self-time (total minus time spent
//! in child spans *on the same thread*) needs no synchronisation.
//! Cross-thread intervals that cannot be expressed as a lexical scope
//! — e.g. a serve request's queue wait, measured between threads — are
//! reported with [`record_interval`].
//!
//! ## Request-scoped tracing (v2)
//!
//! Spans answer "where does the time go"; they cannot answer "what
//! happened to request 4711". The [`ReqEvent`] vocabulary (admitted,
//! enqueued, batched, stolen shard→shard, join@layer-k, catch-up,
//! panic-retry, shed, resolved/failed) traces one request's causal
//! path through the sharded serving layer. Events flow through
//! [`record_req`] — the same one-relaxed-load-when-off discipline as
//! spans — into a [`TraceIndex`] that reassembles per-request
//! timelines, verifies their causal shape, and exports Chrome trace
//! JSON. Independently of the global tracing switch, a
//! [`FlightRecorder`] (bounded per-lane rings, one lane per shard)
//! keeps the newest events always-on and dumps a black-box JSON
//! artifact on fault, shed, or drain.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use wino_obs::{collect, AggregatingProfiler, Span};
//!
//! // Thread-local collection: no global state touched.
//! let ((), spans) = collect(|| {
//!     let _outer = Span::enter("demo", "outer");
//!     let _inner = Span::enter("demo", "inner");
//! });
//! assert_eq!(spans.len(), 2);
//! assert_eq!(spans[0].path, "outer/inner"); // inner closes first
//!
//! // Global tracing into an aggregating profiler.
//! let profiler = Arc::new(AggregatingProfiler::new());
//! wino_obs::set_recorder(profiler.clone());
//! wino_obs::enable();
//! {
//!     let _span = Span::enter("demo", "traced");
//! }
//! wino_obs::disable();
//! wino_obs::clear_recorder();
//! assert_eq!(profiler.snapshot().entries.len(), 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod artifact;
mod json;
mod recorder;
mod report;
mod req;
mod span;

pub use artifact::{merge_section, update_artifact, write_atomic};
pub use json::validate_json;
pub use recorder::{AggregatingProfiler, ProfileEntry, ProfileSnapshot, Recorder, TraceRecorder};
pub use report::{json_escape, MetricFamily, MetricKind, MetricSample, ObsReport};
pub use req::{FlightRecorder, ReqEvent, ReqEventKind, TraceIndex, TraceStats};
pub use span::{
    clear_recorder, collect, disable, enable, epoch_elapsed, is_enabled, record_interval,
    record_req, set_recorder, Span, SpanRecord,
};
