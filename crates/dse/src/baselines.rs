//! Published baseline numbers carried as cited constants.
//!
//! The paper compares against two prior accelerators using their
//! *published* figures (and a multiplier-normalized scaling of [3]);
//! neither ran on the paper's Virtex-7, so modelling them from our
//! resource estimator would be fiction. This module records the Table II
//! baseline columns verbatim with their provenance.

/// Where a Table II value comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Provenance {
    /// Taken directly from the cited publication.
    Published,
    /// The DATE'19 paper's own scaling of a published value
    /// (\[3\]ᵃ: power and multipliers scaled by 688/256).
    ScaledByPaper,
    /// Computed by this reproduction's models.
    Computed,
}

/// One baseline column of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct BaselineRecord {
    /// Column label (e.g. `"[3]"`).
    pub label: &'static str,
    /// Citation string.
    pub citation: &'static str,
    /// `(m, r)` if the design is a Winograd engine.
    pub m_r: Option<(usize, usize)>,
    /// fp32 (or fixed-point) multipliers.
    pub multipliers: u32,
    /// Parallel PEs, when reported.
    pub pe_count: Option<u32>,
    /// Datapath precision in bits.
    pub precision_bits: u32,
    /// Clock in MHz.
    pub freq_mhz: f64,
    /// Conv1…Conv5 VGG16-D group latencies in ms.
    pub conv_ms: [f64; 5],
    /// Whole-network latency in ms.
    pub overall_ms: f64,
    /// Throughput in GOPS.
    pub throughput_gops: f64,
    /// GOPS per multiplier.
    pub mult_efficiency: f64,
    /// Power in watts.
    pub power_w: f64,
    /// GOPS/W.
    pub power_efficiency: f64,
    /// Provenance of the power figure (the latency/throughput figures of
    /// `[3]`/`[3]ᵃ` are analytically reproducible; see `tables::table2`).
    pub power_provenance: Provenance,
}

/// Qiu et al., FPGA'16 \[12\]: embedded Zynq accelerator, 16-bit fixed
/// point (Table II column "\[12\]").
pub fn qiu_fpga16() -> BaselineRecord {
    BaselineRecord {
        label: "[12]",
        citation: "Qiu et al., \"Going deeper with embedded FPGA platform for CNN\", FPGA 2016",
        m_r: None,
        multipliers: 780,
        pe_count: None,
        precision_bits: 16,
        freq_mhz: 150.0,
        conv_ms: [31.29, 23.58, 39.29, 36.30, 32.95],
        overall_ms: 163.4,
        throughput_gops: 187.8,
        mult_efficiency: 0.24,
        power_w: 9.63,
        power_efficiency: 19.50,
        power_provenance: Provenance::Published,
    }
}

/// Podili et al., ASAP'17 \[3\]: the state-of-the-art `F(2×2, 3×3)` engine
/// on a Stratix V GT (Table II column "\[3\]").
pub fn podili_asap17() -> BaselineRecord {
    BaselineRecord {
        label: "[3]",
        citation: "Podili et al., \"Fast and efficient implementation of CNN on FPGA\", ASAP 2017",
        m_r: Some((2, 3)),
        multipliers: 256,
        pe_count: Some(16),
        precision_bits: 32,
        freq_mhz: 200.0,
        conv_ms: [16.81, 24.08, 40.14, 40.14, 12.04],
        overall_ms: 133.22,
        throughput_gops: 230.4,
        mult_efficiency: 0.90,
        power_w: 8.04,
        power_efficiency: 28.66,
        power_provenance: Provenance::Published,
    }
}

/// `[3]ᵃ`: the paper's multiplier-normalized scaling of \[3\] to 688
/// multipliers / 43 PEs (Table II footnote a).
pub fn podili_normalized() -> BaselineRecord {
    BaselineRecord {
        label: "[3]a",
        citation: "Podili et al. (ASAP 2017), normalized by Ahmad & Pasha to 688 multipliers",
        m_r: Some((2, 3)),
        multipliers: 688,
        pe_count: Some(43),
        precision_bits: 32,
        freq_mhz: 200.0,
        conv_ms: [6.25, 8.96, 14.94, 14.94, 4.48],
        overall_ms: 49.57,
        throughput_gops: 619.2,
        mult_efficiency: 0.90,
        power_w: 21.61,
        power_efficiency: 28.66,
        power_provenance: Provenance::ScaledByPaper,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_are_internally_consistent() {
        for rec in [qiu_fpga16(), podili_asap17(), podili_normalized()] {
            // Conv rows sum to the overall latency.
            let sum: f64 = rec.conv_ms.iter().sum();
            assert!(
                (sum - rec.overall_ms).abs() < 0.15,
                "{}: {sum} vs {}",
                rec.label,
                rec.overall_ms
            );
            // Throughput x latency recovers ~30.69 GOP of work.
            let gop = rec.throughput_gops * rec.overall_ms / 1e3;
            assert!((gop - 30.69).abs() < 0.03, "{}: {gop}", rec.label);
            // Efficiency columns are ratios of the other columns.
            assert!(
                (rec.mult_efficiency - rec.throughput_gops / rec.multipliers as f64).abs() < 0.01,
                "{}",
                rec.label
            );
            assert!(
                (rec.power_efficiency - rec.throughput_gops / rec.power_w).abs() < 0.1,
                "{}",
                rec.label
            );
        }
    }

    #[test]
    fn normalization_scales_power_with_multipliers() {
        let base = podili_asap17();
        let norm = podili_normalized();
        let scale = norm.multipliers as f64 / base.multipliers as f64;
        assert!((norm.power_w - base.power_w * scale).abs() < 0.01);
        assert_eq!(norm.power_provenance, Provenance::ScaledByPaper);
    }
}
