//! Regeneration of the paper's figures (data series, not pixels).
//!
//! Each generator returns a [`SeriesFigure`] whose series can be printed
//! next to the paper's published values (embedded in [`paper`]) — the
//! per-figure binaries in `wino-bench` do exactly that.

use crate::{fmt_f, TextTable};
use wino_core::{transform_ops_for, CostModel, TileModel, TransformOps, WinogradParams, Workload};

/// A figure as labelled data series over a shared x-axis.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesFigure {
    /// Figure title.
    pub title: String,
    /// X-axis tick labels.
    pub x_labels: Vec<String>,
    /// `(series name, values)` pairs, one value per x tick.
    pub series: Vec<(String, Vec<f64>)>,
}

impl SeriesFigure {
    /// Renders the figure as an aligned text table (x ticks as rows).
    pub fn to_table(&self, digits: usize) -> TextTable {
        let mut headers = vec!["x".to_owned()];
        headers.extend(self.series.iter().map(|(name, _)| name.clone()));
        let mut table = TextTable::new(headers);
        for (i, x) in self.x_labels.iter().enumerate() {
            let mut row = vec![x.clone()];
            row.extend(self.series.iter().map(|(_, vs)| fmt_f(vs[i], digits)));
            table.push_row(row);
        }
        table
    }
}

/// The paper's published figure values, embedded as golden references.
pub mod paper {
    /// Fig. 1 series (multiplications ×10⁹ per VGG16-D group): rows are
    /// spatial, F(2)…F(7); columns Conv1…Conv5.
    pub const FIG1: [[f64; 5]; 7] = [
        [1.936, 2.775, 4.624, 4.624, 1.387],
        [0.861, 1.233, 2.055, 2.055, 0.617],
        [0.598, 0.857, 1.428, 1.428, 0.429],
        [0.484, 0.694, 1.156, 1.156, 0.347],
        [0.422, 0.604, 1.007, 1.007, 0.302],
        [0.383, 0.549, 0.915, 0.915, 0.274],
        [0.356, 0.510, 0.849, 0.849, 0.255],
    ];

    /// Fig. 2: net transform complexity in MFLOPs for m = 2…7.
    pub const FIG2_MFLOPS: [f64; 6] = [156.0, 196.0, 207.0, 272.0, 304.0, 408.0];

    /// Fig. 3: percentage decrease in multiplication complexity, m = 2…7.
    /// (The m = 2 bar prints 56.25 in the paper; the successive formula
    /// that generates every other bar yields 55.56 — see DESIGN.md §8.)
    pub const FIG3_MULT_DECREASE: [f64; 6] = [56.25, 30.56, 19.00, 12.89, 9.30, 7.02];

    /// Fig. 3: percentage increase in transform complexity, m = 2…7.
    pub const FIG3_TRANSFORM_INCREASE: [f64; 6] = [0.0, 25.59, 5.58, 31.31, 11.68, 34.27];

    /// Fig. 6 throughput (GOPS) at 200 MHz: rows are 256/512/1024
    /// multipliers; columns spatial, F(2)…F(7).
    pub const FIG6_GOPS: [[f64; 7]; 3] = [
        [100.80, 230.40, 331.78, 409.60, 470.21, 518.40, 557.56],
        [201.60, 460.80, 663.50, 819.19, 940.41, 1036.80, 1115.11],
        [403.20, 921.59, 1327.11, 1638.38, 1880.82, 2073.60, 2230.23],
    ];
}

fn f_label(m: usize) -> String {
    format!("F({m}x{m},3x3)")
}

/// Fig. 1: multiplication complexity per VGG16-D group for spatial
/// convolution and `F(m×m, 3×3)`, m = 2…7 (Eq. 4).
///
/// ```
/// use wino_dse::fig1;
/// use wino_models::vgg16d;
///
/// let fig = fig1(&vgg16d(1));
/// assert_eq!(fig.x_labels, ["Conv1", "Conv2", "Conv3", "Conv4", "Conv5"]);
/// // Spatial Conv1 bar: 1.936e9 multiplications (Fig. 1's tallest bar).
/// assert!((fig.series[0].1[0] - 1.936).abs() < 0.001);
/// ```
pub fn fig1(workload: &Workload) -> SeriesFigure {
    let x_labels: Vec<String> = workload.groups().iter().map(|(g, _)| (*g).to_owned()).collect();
    let mut series = Vec::new();
    for m in 1..=7usize {
        let params = WinogradParams::new(m, 3).expect("valid m");
        let label = if m == 1 { "Spatial".to_owned() } else { f_label(m) };
        let values = workload
            .group_mults(params, TileModel::Fractional)
            .into_iter()
            .map(|(_, v)| v / 1e9)
            .collect();
        series.push((label, values));
    }
    SeriesFigure { title: "Fig. 1: multiplication complexity (x1e9)".into(), x_labels, series }
}

/// Per-m transform-ops table used by Figs. 2/3: the β/γ/δ constants under
/// `cost_model`, for m = 2…7 (r = 3).
pub fn transform_ops_series(cost_model: CostModel) -> Vec<(usize, TransformOps)> {
    (2..=7)
        .map(|m| (m, transform_ops_for(WinogradParams::new(m, 3).expect("valid m"), cost_model)))
        .collect()
}

/// Fig. 2: net transform complexity `O_t` over VGG16-D vs m (Eqs. 5–6).
///
/// Matches the paper's convention of counting the *online* transforms
/// (data + inverse; the filter transform is precomputed, Sec. IV-A/C).
pub fn fig2(workload: &Workload, cost_model: CostModel) -> SeriesFigure {
    let mut ours = Vec::new();
    for (m, ops) in transform_ops_series(cost_model) {
        let params = WinogradParams::new(m, 3).expect("valid m");
        let b = workload.transform_complexity(params, ops, TileModel::Fractional);
        ours.push(b.online_total() / 1e6);
    }
    SeriesFigure {
        title: format!("Fig. 2: net transform complexity (MFLOPs, {cost_model} cost model)"),
        x_labels: (2..=7).map(f_label).collect(),
        series: vec![
            ("This reproduction".into(), ours),
            ("Paper".into(), paper::FIG2_MFLOPS.to_vec()),
        ],
    }
}

/// Fig. 3: successive percentage changes — the decrease in multiplication
/// complexity and the increase in transform complexity when going from
/// `m − 1` to `m`.
pub fn fig3(workload: &Workload, cost_model: CostModel) -> SeriesFigure {
    let mults: Vec<f64> = (1..=7)
        .map(|m| {
            workload
                .winograd_mults(WinogradParams::new(m, 3).expect("valid m"), TileModel::Fractional)
        })
        .collect();
    let mult_decrease: Vec<f64> = mults.windows(2).map(|w| 100.0 * (1.0 - w[1] / w[0])).collect();

    let transforms: Vec<f64> = transform_ops_series(cost_model)
        .into_iter()
        .map(|(m, ops)| {
            let params = WinogradParams::new(m, 3).expect("valid m");
            workload.transform_complexity(params, ops, TileModel::Fractional).online_total()
        })
        .collect();
    let mut transform_increase = vec![0.0];
    transform_increase.extend(transforms.windows(2).map(|w| 100.0 * (w[1] / w[0] - 1.0)));

    SeriesFigure {
        title: format!("Fig. 3: percentage variations of complexities ({cost_model} cost model)"),
        x_labels: (2..=7).map(f_label).collect(),
        series: vec![
            ("% mult decrease".into(), mult_decrease),
            ("% transform increase".into(), transform_increase),
            ("Paper % mult decrease".into(), paper::FIG3_MULT_DECREASE.to_vec()),
            ("Paper % transform increase".into(), paper::FIG3_TRANSFORM_INCREASE.to_vec()),
        ],
    }
}

/// Fig. 6: throughput vs output tile size for 256/512/1024 multipliers at
/// 200 MHz.
///
/// Replicates the paper's exact accounting: Winograd points use the
/// *continuous* `P = m_T/(m+r−1)²` (the 331.78 GOPS at m = 3 implies
/// P = 10.24), while the spatial series uses the floored 28-PE design at
/// 256 multipliers scaled linearly with the budget (its 1024-multiplier
/// value is 403.2 = 4 × 100.8, not the 406.8 that `⌊1024/9⌋ = 113` PEs
/// would give).
pub fn fig6(workload: &Workload, freq_hz: f64) -> SeriesFigure {
    let budgets = [256usize, 512, 1024];
    let gop = workload.spatial_gop();
    let mut series = Vec::new();
    for &budget in &budgets {
        let mut values = Vec::new();
        for m in 1..=7usize {
            let params = WinogradParams::new(m, 3).expect("valid m");
            let p = if m == 1 {
                (wino_core::pe_count(256, params) * budget / 256) as f64
            } else {
                wino_core::pe_count_continuous(budget, params)
            };
            let latency: f64 =
                workload.latency_seconds(params, p, 1, freq_hz, TileModel::Fractional);
            values.push(gop / latency);
        }
        series.push((format!("{budget} multipliers"), values));
    }
    let mut x_labels = vec!["Spatial".to_owned()];
    x_labels.extend((2..=7).map(f_label));
    // Transpose to match the x-axis (series per budget, x per method).
    SeriesFigure {
        title: "Fig. 6: throughput (GOPS) vs convolution method".into(),
        x_labels,
        series,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_models::vgg16d;

    #[test]
    fn fig1_matches_paper_within_rounding() {
        let fig = fig1(&vgg16d(1));
        assert_eq!(fig.series.len(), 7);
        assert_eq!(fig.x_labels, vec!["Conv1", "Conv2", "Conv3", "Conv4", "Conv5"]);
        for (si, (name, values)) in fig.series.iter().enumerate() {
            for (vi, &v) in values.iter().enumerate() {
                let expect = paper::FIG1[si][vi];
                assert!(
                    (v - expect).abs() < 0.005,
                    "{name} {}: got {v:.3}, paper {expect}",
                    fig.x_labels[vi]
                );
            }
        }
    }

    #[test]
    fn fig2_is_monotonically_increasing_and_in_paper_range() {
        // Shift-free is the paper's hardware cost model ("implemented
        // using shifters and adders") and tracks Fig. 2's shape best.
        let fig = fig2(&vgg16d(1), CostModel::ShiftFree);
        let ours = &fig.series[0].1;
        for w in ours.windows(2) {
            assert!(w[1] > w[0], "O_t must increase with m: {ours:?}");
        }
        // Anchor: at m = 2 every cost model reproduces Lavin's counts
        // (beta 32, delta 24), landing within ~2% of the paper's 156.
        assert!((ours[0] - 156.0).abs() / 156.0 < 0.02, "got {}", ours[0]);
        // Shape: paper series spans 156→408 (2.6x); ours must grow by a
        // comparable factor over the same range.
        let growth = ours[5] / ours[0];
        let paper_growth = paper::FIG2_MFLOPS[5] / paper::FIG2_MFLOPS[0];
        assert!(
            (growth / paper_growth - 1.0).abs() < 0.5,
            "growth {growth:.2} vs paper {paper_growth:.2}"
        );
    }

    #[test]
    fn fig3_mult_decrease_matches_paper_except_m2() {
        let fig = fig3(&vgg16d(1), CostModel::ShiftFree);
        let dec = &fig.series[0].1;
        // m = 2: the successive formula gives 55.56 (paper prints 56.25).
        assert!((dec[0] - 55.56).abs() < 0.01, "got {}", dec[0]);
        for (i, &expect) in paper::FIG3_MULT_DECREASE.iter().enumerate().skip(1) {
            assert!((dec[i] - expect).abs() < 0.01, "m={}: got {}, paper {expect}", i + 2, dec[i]);
        }
    }

    #[test]
    fn fig3_transform_increase_zigzags_like_paper() {
        // The paper's transform-increase bars alternate small/large
        // (5.58 at m=4 vs 31.31 at m=5): the even-m algorithms reuse ±
        // point pairs more effectively. Our derived series must show the
        // same parity pattern even though absolute percentages differ.
        let fig = fig3(&vgg16d(1), CostModel::ShiftFree);
        let inc = &fig.series[1].1;
        assert_eq!(inc[0], 0.0);
        assert!(inc.iter().skip(1).all(|&v| v > 0.0), "{inc:?}");
        // Paper pattern: inc(m=4) < inc(m=3) and inc(m=5) > inc(m=4).
        assert!(inc[2] < inc[1], "m=4 increase should dip below m=3: {inc:?}");
        assert!(inc[3] > inc[2], "m=5 increase should exceed m=4: {inc:?}");
    }

    #[test]
    fn fig3_crossover_at_m5() {
        // Sec. III-C: at m=4 the mult saving (19%) still beats the
        // transform increase; from m=5 the transform increase dominates.
        // This reproduces under the shift-free hardware cost model
        // (m=4: 10.9% < 19.0%; m=5: 43.7% > 12.9%).
        let fig = fig3(&vgg16d(1), CostModel::ShiftFree);
        let dec = &fig.series[0].1;
        let inc = &fig.series[1].1;
        assert!(dec[2] > inc[2], "m=4 must still be favorable: {} vs {}", dec[2], inc[2]);
        assert!(inc[3] > dec[3], "m=5 must be unfavorable: {} vs {}", inc[3], dec[3]);
    }

    #[test]
    fn fig6_matches_paper_to_a_tenth_gops() {
        let fig = fig6(&vgg16d(1), 200e6);
        for (row, (name, values)) in fig.series.iter().enumerate() {
            for (col, &v) in values.iter().enumerate() {
                let expect = paper::FIG6_GOPS[row][col];
                assert!(
                    (v - expect).abs() < 0.5,
                    "{name} {}: got {v:.2}, paper {expect}",
                    fig.x_labels[col]
                );
            }
        }
    }

    #[test]
    fn figure_table_rendering() {
        let fig = fig6(&vgg16d(1), 200e6);
        let table = fig.to_table(2);
        assert_eq!(table.len(), 7);
        let text = table.to_ascii();
        assert!(text.contains("Spatial"));
        assert!(text.contains("230.40"));
    }
}
