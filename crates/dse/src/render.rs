//! Plain-text and CSV rendering for figure/table data.

/// A rectangular table of strings with a header row.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        TextTable { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width must match header width");
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders an aligned ASCII table.
    pub fn to_ascii(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let fmt_row = |cells: &[String]| {
            let mut line = String::from("|");
            for (cell, w) in cells.iter().zip(&widths) {
                line.push_str(&format!(" {cell:>w$} |"));
            }
            line
        };
        let sep = {
            let mut line = String::from("|");
            for w in &widths {
                line.push_str(&"-".repeat(w + 2));
                line.push('|');
            }
            line
        };
        let mut out = String::new();
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }

    /// Renders RFC-4180-ish CSV (quotes cells containing commas/quotes).
    pub fn to_csv(&self) -> String {
        fn escape(cell: &str) -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(|h| escape(h)).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(|c| escape(c)).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a float with `digits` decimal places (shared by the figure
/// generators so paper-vs-ours columns align).
pub fn fmt_f(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TextTable {
        let mut t = TextTable::new(vec!["name", "value"]);
        t.push_row(vec!["alpha", "1"]);
        t.push_row(vec!["b", "22.5"]);
        t
    }

    #[test]
    fn ascii_alignment() {
        let text = sample().to_ascii();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines share one width.
        assert!(lines.iter().all(|l| l.len() == lines[0].len()), "{text}");
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("22.5"));
    }

    #[test]
    fn csv_escaping() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.push_row(vec!["x,y", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = TextTable::new(vec!["one"]);
        t.push_row(vec!["a", "b"]);
    }

    #[test]
    fn len_and_empty() {
        assert!(TextTable::new(vec!["x"]).is_empty());
        assert_eq!(sample().len(), 2);
    }

    #[test]
    fn fmt_f_digits() {
        assert_eq!(fmt_f(1.23456, 2), "1.23");
        assert_eq!(fmt_f(100.0, 1), "100.0");
    }
}
