//! Design space exploration: sweeps, Pareto analysis and the optimizer
//! that re-derives the paper's Sec. III-C conclusion (`m = 4` for
//! throughput, `m = 2` for power efficiency, `m ≥ 5` never).

use crate::{DesignPoint, Evaluator, Metrics};
use wino_core::WinogradParams;
use wino_fpga::Architecture;

/// Objective for [`best_design`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Objective {
    /// Maximize GOPS.
    Throughput,
    /// Maximize GOPS/W.
    PowerEfficiency,
    /// Maximize GOPS per multiplier.
    MultiplierEfficiency,
}

impl Objective {
    fn score(&self, m: &Metrics) -> f64 {
        match self {
            Objective::Throughput => m.throughput_gops,
            Objective::PowerEfficiency => m.power_efficiency,
            Objective::MultiplierEfficiency => m.mult_efficiency,
        }
    }
}

/// Evaluates every `F(m, r)` for `m ∈ ms` at the PE count Eq. 8 yields
/// from `mult_budget`, returning `(point, metrics)` pairs in `ms` order.
///
/// ```
/// use wino_dse::{sweep_m, Evaluator};
/// use wino_fpga::virtex7_485t;
/// use wino_models::vgg16d;
///
/// // The paper's sweep: m in {2, 3, 4} under a 700-multiplier budget.
/// let evaluator = Evaluator::new(vgg16d(1), virtex7_485t());
/// let sweep = sweep_m(&evaluator, &[2, 3, 4], 3, 700, 200e6);
/// assert_eq!(sweep.len(), 3);
/// assert_eq!(sweep[2].0.pe_count, 19); // Table II: 19 PEs at m = 4
/// assert!((sweep[2].1.total_latency_ms - 28.05).abs() < 0.05);
/// ```
pub fn sweep_m(
    evaluator: &Evaluator,
    ms: &[usize],
    r: usize,
    mult_budget: usize,
    freq_hz: f64,
) -> Vec<(DesignPoint, Metrics)> {
    ms.iter()
        .map(|&m| {
            let params = WinogradParams::new(m, r).expect("valid sweep parameters");
            let point = DesignPoint::with_mult_budget(
                params,
                Architecture::SharedTransform,
                mult_budget,
                freq_hz,
            );
            let metrics = evaluator.evaluate(&point);
            (point, metrics)
        })
        .collect()
}

/// Returns the subset of `candidates` not dominated under
/// (throughput, power efficiency) maximization — the paper's two
/// headline axes.
///
/// ```
/// use wino_dse::{pareto_front, sweep_m, Evaluator};
/// use wino_fpga::virtex7_485t;
/// use wino_models::vgg16d;
///
/// let evaluator = Evaluator::new(vgg16d(1), virtex7_485t());
/// let sweep = sweep_m(&evaluator, &[2, 3, 4], 3, 700, 200e6);
/// // m = 2 wins power efficiency, m = 4 wins throughput, m = 3 is
/// // dominated by neither corner but by no one either way — the front
/// // keeps every trade-off and drops only dominated designs.
/// let front = pareto_front(&sweep);
/// assert!(front.len() >= 2);
/// assert!(front.iter().any(|(p, _)| p.params.m() == 2));
/// assert!(front.iter().any(|(p, _)| p.params.m() == 4));
/// ```
pub fn pareto_front(candidates: &[(DesignPoint, Metrics)]) -> Vec<(DesignPoint, Metrics)> {
    candidates
        .iter()
        .filter(|(_, m)| {
            !candidates.iter().any(|(_, other)| {
                other.throughput_gops >= m.throughput_gops
                    && other.power_efficiency >= m.power_efficiency
                    && (other.throughput_gops > m.throughput_gops
                        || other.power_efficiency > m.power_efficiency)
            })
        })
        .cloned()
        .collect()
}

/// Picks the feasible design maximizing `objective` over `m ∈ ms`.
///
/// Returns `None` when no candidate fits the device.
pub fn best_design(
    evaluator: &Evaluator,
    ms: &[usize],
    r: usize,
    mult_budget: usize,
    freq_hz: f64,
    objective: Objective,
) -> Option<(DesignPoint, Metrics)> {
    sweep_m(evaluator, ms, r, mult_budget, freq_hz)
        .into_iter()
        .filter(|(_, m)| m.fits_device)
        .max_by(|(_, a), (_, b)| {
            objective.score(a).partial_cmp(&objective.score(b)).expect("finite scores")
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_fpga::virtex7_485t;
    use wino_models::vgg16d;

    fn evaluator() -> Evaluator {
        Evaluator::new(vgg16d(1), virtex7_485t())
    }

    #[test]
    fn throughput_optimum_is_m4_on_virtex7() {
        // The paper's chosen design: F(4x4,3x3) with 19 PEs gives the
        // highest throughput among feasible m (Sec. IV-E, Table II).
        let ev = evaluator();
        let (best, metrics) =
            best_design(&ev, &[1, 2, 3, 4, 5, 6], 3, 700, 200e6, Objective::Throughput)
                .expect("some design fits");
        // m >= 5 would be even faster under pure Eq. 9 but does not fit:
        // F(5x5,3x3) needs 49 mults/PE -> P=14, 686 mults, LUT-heavy.
        // The paper stops at m = 4 because transform area explodes; our
        // resource model reproduces that via LUT feasibility.
        assert!(
            best.params.m() >= 4,
            "large tiles win on throughput: got {} ({:.0} GOPS)",
            best.params,
            metrics.throughput_gops
        );
        let m4 = ev.evaluate(&DesignPoint::with_mult_budget(
            WinogradParams::new(4, 3).unwrap(),
            Architecture::SharedTransform,
            700,
            200e6,
        ));
        assert!((m4.throughput_gops - 1094.3).abs() < 2.0);
    }

    #[test]
    fn power_efficiency_optimum_is_small_m() {
        // Table II: power efficiency falls 41.34 -> 37.87 -> 30.13 as m
        // grows; the efficiency-optimal design uses the smallest tile.
        let ev = evaluator();
        let (best, _) = best_design(&ev, &[2, 3, 4], 3, 700, 200e6, Objective::PowerEfficiency)
            .expect("some design fits");
        assert_eq!(best.params.m(), 2);
    }

    #[test]
    fn pareto_front_contains_both_extremes() {
        let ev = evaluator();
        let sweep = sweep_m(&ev, &[2, 3, 4], 3, 700, 200e6);
        let front = pareto_front(&sweep);
        let ms: Vec<usize> = front.iter().map(|(p, _)| p.params.m()).collect();
        // m=2 (efficiency) and m=4 (throughput) are non-dominated; m=3 is
        // also on the front (intermediate on both axes).
        assert!(ms.contains(&2) && ms.contains(&4), "{ms:?}");
    }

    #[test]
    fn dominated_points_are_removed() {
        let ev = evaluator();
        let mut sweep = sweep_m(&ev, &[2, 4], 3, 700, 200e6);
        // Duplicate the m=4 point with fewer PEs: strictly dominated.
        let mut worse = sweep[1].clone();
        worse.0.pe_count = 10;
        worse.1 = ev.evaluate(&worse.0);
        sweep.push(worse);
        let front = pareto_front(&sweep);
        assert_eq!(front.len(), 2, "the 10-PE m=4 point must be dominated");
    }

    #[test]
    fn sweep_orders_by_m() {
        let ev = evaluator();
        let sweep = sweep_m(&ev, &[2, 3, 4], 3, 256, 200e6);
        assert_eq!(sweep.len(), 3);
        assert_eq!(sweep[0].0.pe_count, 16);
        assert_eq!(sweep[1].0.pe_count, 10);
        assert_eq!(sweep[2].0.pe_count, 7);
        // Throughput grows with m at fixed budget (Fig. 6 trend, floor P).
        assert!(sweep[2].1.throughput_gops > sweep[0].1.throughput_gops);
    }

    #[test]
    fn infeasible_budget_returns_none() {
        let ev = evaluator();
        // A multiplier budget of 50,000 would need ~71x the device DSPs.
        let result = best_design(&ev, &[2], 3, 50_000, 200e6, Objective::Throughput);
        assert!(result.is_none());
    }
}
