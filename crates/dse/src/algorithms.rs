//! Per-algorithm analytical latency entry points for the evaluator.
//!
//! The Winograd path has always flowed through
//! [`wino_core::latency_seconds`]; this module adds the FFT
//! counterpart so heterogeneous searches can cost a frequency-domain
//! engine context with the same conventions (Eq. 9's
//! `cycles = mults / multipliers + D_p − 1` pipeline accounting and
//! whole-tile overlap–save window counts).

use wino_core::{fft_latency_seconds, ConvShape};

/// Analytical latency of one FFT engine context running a layer as
/// overlap–save convolution with FFT size `n` on `multipliers` parallel
/// real multipliers — the FFT analogue of the Winograd context latency
/// `wino_core::latency_seconds` the evaluator already uses.
///
/// Forwards to [`wino_core::fft_latency_seconds`]; see there for the
/// multiply count (`fft_layer_mults`: per-tile forward transforms of
/// `C + K` planes plus the `4·C·K` real multiplies per kept half-plane
/// bin, kernel spectra excluded as offline like the Winograd filter
/// transform).
///
/// # Panics
///
/// Panics when `n < shape.r`, `multipliers` is not positive, or
/// `freq_hz` is not positive.
pub fn fft_context_latency_seconds(
    batch: usize,
    shape: &ConvShape,
    n: usize,
    multipliers: f64,
    pipeline_depth: usize,
    freq_hz: f64,
) -> f64 {
    assert!(multipliers > 0.0, "multipliers must be positive");
    assert!(freq_hz > 0.0, "frequency must be positive");
    fft_latency_seconds(batch, shape, n, multipliers, pipeline_depth, freq_hz)
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_core::{latency_seconds, TileModel, WinogradParams};

    #[test]
    fn fft_context_matches_core_model() {
        let shape = ConvShape::same_padded(56, 56, 64, 64, 3);
        let direct = wino_core::fft_latency_seconds(1, &shape, 16, 256.0, 8, 200e6);
        assert_eq!(fft_context_latency_seconds(1, &shape, 16, 256.0, 8, 200e6), direct);
    }

    #[test]
    fn large_kernels_favor_fft_over_winograd_contexts() {
        // The crossover the paper motivates FFT with: at r = 11 the
        // Winograd transform overhead dominates and the FFT context is
        // faster on the same multiplier budget.
        // Equal multiplier budgets: a Winograd PE of F(2,11) holds
        // (2+11-1)² = 144 multipliers, so 1024 multipliers pack 7 PEs.
        let budget = 1024usize;
        let shape = ConvShape { h: 64, w: 64, c: 24, k: 24, r: 11, stride: 1, pad: 5 };
        let params = WinogradParams::new(2, 11).unwrap();
        let pe = wino_core::pe_count(budget, params);
        let wino = latency_seconds(1, &shape, params, pe as f64, 8, 200e6, TileModel::Ceil);
        let fft = fft_context_latency_seconds(1, &shape, 32, budget as f64, 8, 200e6);
        assert!(fft < wino / 2.0, "fft {fft} vs winograd {wino}");
    }

    #[test]
    #[should_panic(expected = "multipliers must be positive")]
    fn zero_multipliers_panic() {
        let shape = ConvShape::same_padded(8, 8, 1, 1, 3);
        let _ = fft_context_latency_seconds(1, &shape, 8, 0.0, 8, 200e6);
    }
}
