//! Design points and their evaluation — one row of the paper's design
//! space.

use std::fmt;
use wino_core::{pe_count, TileModel, TransformOps, WinogradParams, Workload};
use wino_fpga::{Architecture, EngineResources, FpgaDevice, PowerModel, ResourceUsage};

/// One candidate accelerator configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignPoint {
    /// Algorithm parameters (`m = 1` means a spatial MAC engine).
    pub params: WinogradParams,
    /// Data-transform placement.
    pub arch: Architecture,
    /// Parallel PEs.
    pub pe_count: usize,
    /// Clock frequency in Hz.
    pub freq_hz: f64,
    /// Pipeline depth `D_p` for Eq. 9.
    pub pipeline_depth: usize,
}

impl DesignPoint {
    /// Builds a point from a multiplier budget via Eq. 8
    /// (`P = ⌊m_T/(m+r−1)²⌋`), the paper's design rule.
    pub fn with_mult_budget(
        params: WinogradParams,
        arch: Architecture,
        mult_budget: usize,
        freq_hz: f64,
    ) -> DesignPoint {
        DesignPoint {
            params,
            arch,
            pe_count: pe_count(mult_budget, params),
            freq_hz,
            pipeline_depth: 8,
        }
    }

    /// fp32 multipliers this point instantiates (`P·(m+r−1)²`).
    pub fn multipliers(&self) -> usize {
        self.pe_count * self.params.mults_per_tile_2d()
    }

    /// A hashable identity for this point, suitable as a memoization key
    /// for evaluation caches (the clock is stored as raw `f64` bits).
    pub fn key(&self) -> DesignKey {
        DesignKey {
            m: self.params.m(),
            r: self.params.r(),
            arch: self.arch,
            pe_count: self.pe_count,
            freq_bits: self.freq_hz.to_bits(),
            pipeline_depth: self.pipeline_depth,
        }
    }
}

/// Hashable identity of a [`DesignPoint`] — the key under which
/// [`CachedEvaluator`] (and any external cache) memoizes evaluations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct DesignKey {
    /// Output tile size `m`.
    pub m: usize,
    /// Kernel size `r`.
    pub r: usize,
    /// Data-transform placement.
    pub arch: Architecture,
    /// Parallel PEs.
    pub pe_count: usize,
    /// Clock frequency as raw `f64` bits.
    pub freq_bits: u64,
    /// Pipeline depth `D_p`.
    pub pipeline_depth: usize,
}

impl fmt::Display for DesignPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} x{} PEs ({} mults, {}, {:.0} MHz)",
            self.params,
            self.pe_count,
            self.multipliers(),
            self.arch,
            self.freq_hz / 1e6
        )
    }
}

/// Evaluated quality of one design point on one workload/device.
#[derive(Debug, Clone, PartialEq)]
pub struct Metrics {
    /// Latency per workload group in milliseconds (Table II Conv1…Conv5).
    pub group_latency_ms: Vec<(String, f64)>,
    /// Whole-workload latency in milliseconds.
    pub total_latency_ms: f64,
    /// Throughput in GOPS (Eq. 10).
    pub throughput_gops: f64,
    /// GOPS per multiplier (Table II "multiplier efficiency").
    pub mult_efficiency: f64,
    /// Estimated resource usage.
    pub resources: ResourceUsage,
    /// Modelled power in watts.
    pub power_w: f64,
    /// GOPS/W (Table II "power efficiency").
    pub power_efficiency: f64,
    /// Whether the design fits the evaluation device.
    pub fits_device: bool,
}

/// Evaluates design points against a workload on a device — the paper's
/// Sec. V methodology in one object.
#[derive(Debug, Clone)]
pub struct Evaluator {
    workload: Workload,
    device: FpgaDevice,
    power: PowerModel,
    tiles: TileModel,
}

impl Evaluator {
    /// The paper's setup: given workload and device, power model
    /// calibrated on Table II, fractional tile accounting (Eqs. 4–9 as
    /// written).
    pub fn new(workload: Workload, device: FpgaDevice) -> Evaluator {
        Evaluator {
            workload,
            device,
            power: wino_fpga::paper_calibrated_model(),
            tiles: TileModel::Fractional,
        }
    }

    /// Replaces the power model.
    pub fn with_power_model(mut self, power: PowerModel) -> Evaluator {
        self.power = power;
        self
    }

    /// Switches tile accounting (e.g. to [`TileModel::Ceil`] for
    /// hardware-exact latencies).
    pub fn with_tile_model(mut self, tiles: TileModel) -> Evaluator {
        self.tiles = tiles;
        self
    }

    /// The workload under evaluation.
    pub fn workload(&self) -> &Workload {
        &self.workload
    }

    /// The target device.
    pub fn device(&self) -> &FpgaDevice {
        &self.device
    }

    /// The power model in use — exposed so external search engines can
    /// evaluate composite designs under the same calibration.
    pub fn power_model(&self) -> &PowerModel {
        &self.power
    }

    /// The tile-accounting mode in use.
    pub fn tile_model(&self) -> TileModel {
        self.tiles
    }

    /// Evaluates one design point.
    ///
    /// # Panics
    ///
    /// Panics if transform generation fails for the point's parameters
    /// (impossible for parameters accepted by [`WinogradParams::new`]).
    pub fn evaluate(&self, point: &DesignPoint) -> Metrics {
        let group_latency: Vec<(String, f64)> = self
            .workload
            .group_latency_seconds(
                point.params,
                point.pe_count as f64,
                point.pipeline_depth,
                point.freq_hz,
                self.tiles,
            )
            .into_iter()
            .map(|(g, s)| (g, s * 1e3))
            .collect();
        let total_ms: f64 = group_latency.iter().map(|(_, ms)| ms).sum();
        let throughput = self.workload.spatial_gop() / (total_ms / 1e3);

        let est = EngineResources::new(point.params).expect("valid params generate");
        let resources = est.estimate(point.arch, point.pe_count);
        let power_w = self.power.power_w(&resources, point.freq_hz);

        Metrics {
            total_latency_ms: total_ms,
            throughput_gops: throughput,
            mult_efficiency: throughput / point.multipliers() as f64,
            power_efficiency: throughput / power_w,
            power_w,
            fits_device: resources.fits(&self.device),
            resources,
            group_latency_ms: group_latency,
        }
    }

    /// The transform-ops constants for a point's parameters under the
    /// paper's hardware cost model (shift-free), exposed for overhead
    /// analyses (Eq. 7).
    pub fn transform_ops(&self, params: WinogradParams) -> TransformOps {
        wino_core::transform_ops_for(params, wino_core::CostModel::ShiftFree)
    }

    /// Wraps this evaluator in a [`DesignKey`]-keyed memoizing cache.
    pub fn cached(self) -> CachedEvaluator {
        CachedEvaluator {
            inner: self,
            memo: std::sync::Mutex::new(std::collections::HashMap::new()),
        }
    }
}

/// A thread-safe memoizing wrapper over [`Evaluator::evaluate`], keyed
/// by [`DesignKey`].
///
/// Evaluation regenerates transform matrices and resource estimates on
/// every call; search engines revisit the same design points
/// constantly, so memoizing by [`DesignPoint::key`] makes revisits
/// free. `wino-search`'s `HomogeneousSpace` evaluates through this
/// wrapper.
#[derive(Debug)]
pub struct CachedEvaluator {
    inner: Evaluator,
    memo: std::sync::Mutex<std::collections::HashMap<DesignKey, Metrics>>,
}

impl CachedEvaluator {
    /// The wrapped evaluator.
    pub fn evaluator(&self) -> &Evaluator {
        &self.inner
    }

    /// Evaluates `point`, returning the memoized result when available.
    pub fn evaluate(&self, point: &DesignPoint) -> Metrics {
        let key = point.key();
        if let Some(hit) = self.memo.lock().expect("memo lock").get(&key) {
            return hit.clone();
        }
        let metrics = self.inner.evaluate(point);
        self.memo.lock().expect("memo lock").insert(key, metrics.clone());
        metrics
    }

    /// Number of distinct design points evaluated so far.
    pub fn len(&self) -> usize {
        self.memo.lock().expect("memo lock").len()
    }

    /// `true` when nothing has been evaluated yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_models::vgg16d;

    fn paper_evaluator() -> Evaluator {
        Evaluator::new(vgg16d(1), wino_fpga::virtex7_485t())
    }

    fn point(m: usize, p: usize) -> DesignPoint {
        DesignPoint {
            params: WinogradParams::new(m, 3).unwrap(),
            arch: Architecture::SharedTransform,
            pe_count: p,
            freq_hz: 200e6,
            pipeline_depth: 8,
        }
    }

    #[test]
    fn table2_ours_m4_row() {
        // Table II "4,3" column: Conv1 3.54 ms ... overall 28.05 ms,
        // 1094.3 GOPS, 1.60 GOPS/mult.
        let ev = paper_evaluator();
        let metrics = ev.evaluate(&point(4, 19));
        let expect = [3.54, 5.07, 8.45, 8.45, 2.54];
        for ((name, ms), &paper) in metrics.group_latency_ms.iter().zip(&expect) {
            assert!((ms - paper).abs() < 0.01, "{name}: got {ms:.3}, paper {paper}");
        }
        assert!(
            (metrics.total_latency_ms - 28.05).abs() < 0.03,
            "got {}",
            metrics.total_latency_ms
        );
        assert!((metrics.throughput_gops - 1094.3).abs() < 2.0, "got {}", metrics.throughput_gops);
        assert!((metrics.mult_efficiency - 1.60).abs() < 0.01);
        assert!(metrics.fits_device);
    }

    #[test]
    fn table2_ours_m3_row() {
        let ev = paper_evaluator();
        let metrics = ev.evaluate(&point(3, 28));
        let expect = [4.27, 6.12, 10.19, 10.19, 3.06];
        for ((name, ms), &paper) in metrics.group_latency_ms.iter().zip(&expect) {
            assert!((ms - paper).abs() < 0.01, "{name}: got {ms:.3}, paper {paper}");
        }
        assert!((metrics.total_latency_ms - 33.83).abs() < 0.03);
        assert!((metrics.throughput_gops - 907.2).abs() < 1.5, "got {}", metrics.throughput_gops);
        assert!((metrics.mult_efficiency - 1.29).abs() < 0.01);
    }

    #[test]
    fn table2_ours_m2_row_matches_podili_normalized() {
        // m = 2 with 43 PEs reproduces [3]^a's latency column exactly
        // (Sec. V-B: same latency when using the same multipliers).
        let ev = paper_evaluator();
        let metrics = ev.evaluate(&point(2, 43));
        let expect = [6.25, 8.96, 14.94, 14.94, 4.48];
        for ((name, ms), &paper) in metrics.group_latency_ms.iter().zip(&expect) {
            assert!((ms - paper).abs() < 0.01, "{name}: got {ms:.3}, paper {paper}");
        }
        assert!((metrics.total_latency_ms - 49.57).abs() < 0.03);
        assert!((metrics.throughput_gops - 619.2).abs() < 1.0);
    }

    #[test]
    fn headline_speedup_4_75x() {
        // Abstract: "up to 4.75x ... improvement in throughput" vs [3]
        // (230.4 GOPS at 256 multipliers).
        let ev = paper_evaluator();
        let ours = ev.evaluate(&point(4, 19));
        let podili = ev.evaluate(&point(2, 16));
        assert!((podili.throughput_gops - 230.4).abs() < 0.5);
        let speedup = ours.throughput_gops / podili.throughput_gops;
        assert!((speedup - 4.75).abs() < 0.02, "got {speedup:.3}");
        // "while using approximately 2.67x more multipliers"
        let mult_ratio = ours.resources.multipliers as f64 / podili.resources.multipliers as f64;
        assert!((mult_ratio - 2.67).abs() < 0.01, "got {mult_ratio:.3}");
    }

    #[test]
    fn with_mult_budget_applies_eq8() {
        let p = DesignPoint::with_mult_budget(
            WinogradParams::new(4, 3).unwrap(),
            Architecture::SharedTransform,
            700,
            200e6,
        );
        assert_eq!(p.pe_count, 19);
        assert_eq!(p.multipliers(), 684);
        assert!(p.to_string().contains("19 PEs"));
    }

    #[test]
    fn power_efficiency_uses_model() {
        let ev = paper_evaluator();
        let m = ev.evaluate(&point(2, 43));
        assert!((m.power_efficiency - m.throughput_gops / m.power_w).abs() < 1e-9);
        // Paper-calibrated power for this design is ~13 W (Table II prints
        // 13.03; its own efficiency row implies 14.98 — see DESIGN.md §8).
        assert!((12.0..16.0).contains(&m.power_w), "got {}", m.power_w);
    }

    #[test]
    fn cached_evaluator_memoizes_by_design_key() {
        let cached = paper_evaluator().cached();
        assert!(cached.is_empty());
        let a = cached.evaluate(&point(4, 19));
        assert_eq!(cached.len(), 1);
        let b = cached.evaluate(&point(4, 19));
        assert_eq!(cached.len(), 1, "identical points share one entry");
        assert_eq!(a, b);
        assert_eq!(a, cached.evaluator().evaluate(&point(4, 19)), "cache is transparent");
        cached.evaluate(&point(2, 43));
        assert_eq!(cached.len(), 2);
    }

    #[test]
    fn oversized_design_fails_feasibility() {
        let ev = paper_evaluator();
        let m = ev.evaluate(&point(4, 20)); // 720 mults > 700 available
        assert!(!m.fits_device);
    }

    #[test]
    fn ceil_tiles_increase_latency_when_ragged() {
        let ev = paper_evaluator().with_tile_model(TileModel::Ceil);
        let frac = paper_evaluator().evaluate(&point(3, 28));
        let ceil = ev.evaluate(&point(3, 28));
        // 224 % 3 != 0 etc: ceil tiling is strictly slower.
        assert!(ceil.total_latency_ms > frac.total_latency_ms);
    }
}
