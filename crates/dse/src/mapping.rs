//! Mapping whole networks onto a Winograd engine with spatial fallback.
//!
//! The paper evaluates VGG16-D, where every layer is 3×3 stride-1 and the
//! Winograd engine covers 100% of the work. Real networks (AlexNet,
//! ResNet) contain strided and non-3×3 layers the engine cannot run; this
//! module maps each layer to the Winograd engine or to a spatial MAC
//! engine built from the same multiplier budget, and reports the
//! end-to-end picture — the Amdahl view of the paper's speedup.

use crate::DesignPoint;
use std::fmt;
use wino_core::{engine_cycles, spatial_ops, Layer, TileModel, WinogradParams, Workload};

/// Where one layer executes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerTarget {
    /// The `F(m×m, r×r)` Winograd engine.
    Winograd,
    /// The spatial MAC fallback engine.
    SpatialFallback,
}

/// One mapped layer.
#[derive(Debug, Clone, PartialEq)]
pub struct MappedLayer {
    /// Layer name.
    pub name: String,
    /// Execution target.
    pub target: LayerTarget,
    /// Latency in seconds on its target.
    pub latency_s: f64,
    /// Spatial-equivalent operations.
    pub ops: f64,
}

/// End-to-end mapping of a workload onto one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadMapping {
    /// Per-layer assignments in execution order.
    pub layers: Vec<MappedLayer>,
    /// Seconds spent on the Winograd engine.
    pub winograd_seconds: f64,
    /// Seconds spent on the spatial fallback.
    pub fallback_seconds: f64,
    /// Fraction of total operations served by the Winograd engine.
    pub ops_coverage: f64,
    /// End-to-end throughput in GOPS.
    pub throughput_gops: f64,
}

impl WorkloadMapping {
    /// Total end-to-end latency.
    pub fn total_seconds(&self) -> f64 {
        self.winograd_seconds + self.fallback_seconds
    }
}

impl fmt::Display for WorkloadMapping {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{:.2} ms total ({:.2} ms Winograd + {:.2} ms fallback), {:.1}% ops covered, {:.1} GOPS",
            self.total_seconds() * 1e3,
            self.winograd_seconds * 1e3,
            self.fallback_seconds * 1e3,
            self.ops_coverage * 100.0,
            self.throughput_gops
        )?;
        for l in &self.layers {
            writeln!(
                f,
                "  {:<12} {:<9} {:>9.3} ms",
                l.name,
                match l.target {
                    LayerTarget::Winograd => "winograd",
                    LayerTarget::SpatialFallback => "spatial",
                },
                l.latency_s * 1e3
            )?;
        }
        Ok(())
    }
}

/// `true` when `layer` can run on the `F(m×m, r×r)` engine of `point`.
pub fn winograd_eligible(layer: &Layer, point: &DesignPoint) -> bool {
    layer.shape.winograd_compatible() && layer.shape.r == point.params.r()
}

/// Maps every layer of `workload` onto `point`'s Winograd engine or a
/// spatial fallback engine reusing the same multipliers
/// (`P_s = ⌊mults/r²⌋` per layer kernel size).
///
/// # Panics
///
/// Panics if a fallback layer's kernel exceeds the supported size
/// (`r > 16`) or the multiplier budget cannot fit even one spatial PE.
pub fn map_workload(workload: &Workload, point: &DesignPoint, tiles: TileModel) -> WorkloadMapping {
    let tc = 1.0 / point.freq_hz;
    let mults = point.multipliers();
    let mut layers = Vec::new();
    let (mut wino_s, mut fall_s) = (0.0f64, 0.0f64);
    let (mut wino_ops, mut total_ops) = (0.0f64, 0.0f64);

    for layer in workload.layers() {
        let ops = spatial_ops(workload.batch(), &layer.shape) as f64;
        total_ops += ops;
        if winograd_eligible(layer, point) {
            let cycles = engine_cycles(
                workload.batch(),
                &layer.shape,
                point.params,
                point.pe_count as f64,
                tiles,
            ) + point.pipeline_depth as f64
                - 1.0;
            let latency = cycles * tc;
            wino_s += latency;
            wino_ops += ops;
            layers.push(MappedLayer {
                name: layer.name.clone(),
                target: LayerTarget::Winograd,
                latency_s: latency,
                ops,
            });
        } else {
            // Spatial fallback: each PE holds r^2 multipliers and emits
            // one output per cycle (the m = 1 engine of Fig. 6).
            let spatial = WinogradParams::new(1, layer.shape.r)
                .expect("fallback kernel within supported size");
            let p = (mults / (layer.shape.r * layer.shape.r)).max(1) as f64;
            let cycles = engine_cycles(workload.batch(), &layer.shape, spatial, p, tiles)
                + point.pipeline_depth as f64
                - 1.0;
            let latency = cycles * tc;
            fall_s += latency;
            layers.push(MappedLayer {
                name: layer.name.clone(),
                target: LayerTarget::SpatialFallback,
                latency_s: latency,
                ops,
            });
        }
    }
    WorkloadMapping {
        layers,
        winograd_seconds: wino_s,
        fallback_seconds: fall_s,
        ops_coverage: if total_ops > 0.0 { wino_ops / total_ops } else { 0.0 },
        throughput_gops: total_ops / (wino_s + fall_s) / 1e9,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_fpga::Architecture;
    use wino_models::{alexnet, resnet18, vgg16d};

    fn paper_point() -> DesignPoint {
        DesignPoint {
            params: WinogradParams::new(4, 3).unwrap(),
            arch: Architecture::SharedTransform,
            pe_count: 19,
            freq_hz: 200e6,
            pipeline_depth: 8,
        }
    }

    #[test]
    fn vgg16_maps_entirely_to_winograd() {
        let mapping = map_workload(&vgg16d(1), &paper_point(), TileModel::Fractional);
        assert!(mapping.layers.iter().all(|l| l.target == LayerTarget::Winograd));
        assert_eq!(mapping.fallback_seconds, 0.0);
        assert!((mapping.ops_coverage - 1.0).abs() < 1e-12);
        // End-to-end equals Table II's 28.05 ms (pipeline fill is in the
        // sub-microsecond noise).
        assert!((mapping.total_seconds() * 1e3 - 28.05).abs() < 0.05);
        assert!((mapping.throughput_gops - 1094.3).abs() < 2.0);
    }

    #[test]
    fn resnet18_strided_layers_fall_back() {
        let mapping = map_workload(&resnet18(1), &paper_point(), TileModel::Ceil);
        let fallback: Vec<&str> = mapping
            .layers
            .iter()
            .filter(|l| l.target == LayerTarget::SpatialFallback)
            .map(|l| l.name.as_str())
            .collect();
        assert_eq!(fallback, vec!["conv1", "s2_conv1", "s3_conv1", "s4_conv1"]);
        // The 3x3 stride-1 body dominates ResNet-18's conv ops.
        assert!(mapping.ops_coverage > 0.75, "coverage {:.2}", mapping.ops_coverage);
        assert!(mapping.fallback_seconds > 0.0);
    }

    #[test]
    fn alexnet_large_kernels_fall_back() {
        let mapping = map_workload(&alexnet(1), &paper_point(), TileModel::Ceil);
        let by_name = |n: &str| mapping.layers.iter().find(|l| l.name == n).unwrap();
        assert_eq!(by_name("conv1").target, LayerTarget::SpatialFallback); // 11x11/4
        assert_eq!(by_name("conv2").target, LayerTarget::SpatialFallback); // 5x5
        assert_eq!(by_name("conv3").target, LayerTarget::Winograd);
        // AlexNet's 3x3 share is smaller: Amdahl bites.
        assert!(mapping.ops_coverage < 0.65, "coverage {:.2}", mapping.ops_coverage);
    }

    #[test]
    fn amdahl_effect_caps_end_to_end_throughput() {
        // End-to-end GOPS on mixed networks is below the engine's 1094
        // GOPS peak because fallback layers run at spatial rates.
        let resnet = map_workload(&resnet18(1), &paper_point(), TileModel::Ceil);
        assert!(resnet.throughput_gops < 1094.0);
        // But still well above an all-spatial design of the same budget.
        let all_spatial = DesignPoint {
            params: WinogradParams::new(1, 3).unwrap(),
            pe_count: 76, // 684/9
            ..paper_point()
        };
        let spatial_map = map_workload(&resnet18(1), &all_spatial, TileModel::Ceil);
        assert!(
            resnet.throughput_gops > 1.5 * spatial_map.throughput_gops,
            "{} vs {}",
            resnet.throughput_gops,
            spatial_map.throughput_gops
        );
    }

    #[test]
    fn display_lists_every_layer() {
        let mapping = map_workload(&resnet18(1), &paper_point(), TileModel::Ceil);
        let text = mapping.to_string();
        assert!(text.contains("s2_conv1"));
        assert!(text.contains("spatial"));
        assert!(text.contains("winograd"));
        assert!(text.contains("ops covered"));
    }
}
