//! Regeneration of the paper's tables.

use crate::{
    fmt_f, podili_asap17, podili_normalized, qiu_fpga16, DesignPoint, Evaluator, Provenance,
    TextTable,
};
use wino_core::WinogradParams;
use wino_fpga::{Architecture, EngineResources, FpgaDevice, ResourceUsage};

/// The data of Table I: resource utilization of the 19-PE `F(4×4, 3×3)`
/// engine in both architectures, plus device capacity.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1 {
    /// The \[3\]-based design (per-PE data transform).
    pub reference: ResourceUsage,
    /// The proposed design (shared data transform).
    pub proposed: ResourceUsage,
    /// Device capacities.
    pub available: ResourceUsage,
    /// LUT saving of proposed vs reference (the paper's 53.6%).
    pub lut_saving: f64,
}

/// Builds Table I for the given device (the paper's Virtex-7).
///
/// ```
/// use wino_dse::table1;
/// use wino_fpga::virtex7_485t;
///
/// let t = table1(&virtex7_485t());
/// // The paper's headline: ~54% fewer LUTs than the [3]-based design.
/// assert!((t.lut_saving - 0.536).abs() < 0.01);
/// assert_eq!(t.proposed.multipliers, 684);
/// ```
///
/// # Panics
///
/// Panics only on transform-generation failure (impossible for
/// `F(4×4, 3×3)`).
pub fn table1(device: &FpgaDevice) -> Table1 {
    let est = EngineResources::new(WinogradParams::new(4, 3).expect("valid")).expect("generates");
    let proposed = est.estimate(Architecture::SharedTransform, 19);
    let reference = est.estimate(Architecture::PerPeTransform, 19);
    Table1 {
        lut_saving: 1.0 - proposed.luts as f64 / reference.luts as f64,
        reference,
        proposed,
        available: ResourceUsage {
            luts: device.luts,
            registers: device.registers,
            dsps: device.dsps,
            multipliers: device.max_f32_mults(),
        },
    }
}

impl Table1 {
    /// Renders the paper's Table I layout.
    pub fn to_text(&self) -> TextTable {
        let mut t = TextTable::new(vec!["Design", "Registers", "LUTs", "DSPs", "Multipliers"]);
        for (label, u) in [
            ("Design based on [3]", &self.reference),
            ("Our proposed design", &self.proposed),
            ("Available resources", &self.available),
        ] {
            t.push_row(vec![
                label.to_owned(),
                u.registers.to_string(),
                u.luts.to_string(),
                u.dsps.to_string(),
                u.multipliers.to_string(),
            ]);
        }
        t
    }
}

/// One column of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Column {
    /// Column label.
    pub label: String,
    /// `(m, r)` when applicable.
    pub m_r: Option<(usize, usize)>,
    /// Multipliers used.
    pub multipliers: u32,
    /// PE count when applicable.
    pub pe_count: Option<u32>,
    /// Datapath precision in bits.
    pub precision_bits: u32,
    /// Clock in MHz.
    pub freq_mhz: f64,
    /// Conv1…Conv5 latencies in ms.
    pub conv_ms: [f64; 5],
    /// Whole-network latency in ms.
    pub overall_ms: f64,
    /// Throughput in GOPS.
    pub throughput_gops: f64,
    /// GOPS per multiplier.
    pub mult_efficiency: f64,
    /// Power in watts.
    pub power_w: f64,
    /// GOPS/W.
    pub power_efficiency: f64,
    /// Provenance of the power value.
    pub power_provenance: Provenance,
}

/// Builds all six Table II columns: the three published baselines and the
/// three proposed designs evaluated by our models.
///
/// ```
/// use wino_dse::{table2, Evaluator};
/// use wino_fpga::virtex7_485t;
/// use wino_models::vgg16d;
///
/// let columns = table2(&Evaluator::new(vgg16d(1), virtex7_485t()));
/// assert_eq!(columns.len(), 6);
/// let m4 = columns.last().unwrap(); // "Ours 4,3"
/// assert!((m4.overall_ms - 28.05).abs() < 0.05);
/// assert!((m4.throughput_gops - 1094.3).abs() < 2.0);
/// ```
pub fn table2(evaluator: &Evaluator) -> Vec<Table2Column> {
    let mut columns: Vec<Table2Column> = [qiu_fpga16(), podili_asap17(), podili_normalized()]
        .into_iter()
        .map(|b| Table2Column {
            label: b.label.to_owned(),
            m_r: b.m_r,
            multipliers: b.multipliers,
            pe_count: b.pe_count,
            precision_bits: b.precision_bits,
            freq_mhz: b.freq_mhz,
            conv_ms: b.conv_ms,
            overall_ms: b.overall_ms,
            throughput_gops: b.throughput_gops,
            mult_efficiency: b.mult_efficiency,
            power_w: b.power_w,
            power_efficiency: b.power_efficiency,
            power_provenance: b.power_provenance,
        })
        .collect();

    for (m, pes) in [(2usize, 43usize), (3, 28), (4, 19)] {
        let point = DesignPoint {
            params: WinogradParams::new(m, 3).expect("valid"),
            arch: Architecture::SharedTransform,
            pe_count: pes,
            freq_hz: 200e6,
            pipeline_depth: 8,
        };
        let metrics = evaluator.evaluate(&point);
        let mut conv_ms = [0.0; 5];
        for (slot, (_, ms)) in conv_ms.iter_mut().zip(&metrics.group_latency_ms) {
            *slot = *ms;
        }
        columns.push(Table2Column {
            label: format!("Ours {m},3"),
            m_r: Some((m, 3)),
            multipliers: point.multipliers() as u32,
            pe_count: Some(pes as u32),
            precision_bits: 32,
            freq_mhz: 200.0,
            conv_ms,
            overall_ms: metrics.total_latency_ms,
            throughput_gops: metrics.throughput_gops,
            mult_efficiency: metrics.mult_efficiency,
            power_w: metrics.power_w,
            power_efficiency: metrics.power_efficiency,
            power_provenance: Provenance::Computed,
        });
    }
    columns
}

/// Renders Table II in the paper's orientation (metrics as rows, designs
/// as columns).
pub fn table2_text(columns: &[Table2Column]) -> TextTable {
    let mut headers = vec!["Metric".to_owned()];
    headers.extend(columns.iter().map(|c| c.label.clone()));
    let mut t = TextTable::new(headers);
    let mut push = |name: &str, values: Vec<String>| {
        let mut row = vec![name.to_owned()];
        row.extend(values);
        t.push_row(row);
    };
    push(
        "m,r",
        columns.iter().map(|c| c.m_r.map_or("-".into(), |(m, r)| format!("{m},{r}"))).collect(),
    );
    push("Multipliers", columns.iter().map(|c| c.multipliers.to_string()).collect());
    push("PEs", columns.iter().map(|c| c.pe_count.map_or("-".into(), |p| p.to_string())).collect());
    push("Precision (bits)", columns.iter().map(|c| c.precision_bits.to_string()).collect());
    push("Freq (MHz)", columns.iter().map(|c| fmt_f(c.freq_mhz, 0)).collect());
    for (gi, name) in ["Conv1", "Conv2", "Conv3", "Conv4", "Conv5"].iter().enumerate() {
        push(&format!("{name} (ms)"), columns.iter().map(|c| fmt_f(c.conv_ms[gi], 2)).collect());
    }
    push("Overall (ms)", columns.iter().map(|c| fmt_f(c.overall_ms, 2)).collect());
    push("Throughput (GOPS)", columns.iter().map(|c| fmt_f(c.throughput_gops, 1)).collect());
    push("GOPS/multiplier", columns.iter().map(|c| fmt_f(c.mult_efficiency, 2)).collect());
    push("Power (W)", columns.iter().map(|c| fmt_f(c.power_w, 2)).collect());
    push("GOPS/W", columns.iter().map(|c| fmt_f(c.power_efficiency, 2)).collect());
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_fpga::virtex7_485t;
    use wino_models::vgg16d;

    fn evaluator() -> Evaluator {
        Evaluator::new(vgg16d(1), virtex7_485t())
    }

    #[test]
    fn table1_reproduces_paper_rows() {
        let t = table1(&virtex7_485t());
        assert_eq!(t.reference.luts, 232_256);
        assert!((t.proposed.luts as i64 - 107_839).abs() <= 2);
        assert_eq!(t.reference.dsps, 2_736);
        assert_eq!(t.available.luts, 303_600);
        assert_eq!(t.available.multipliers, 700);
        assert!((t.lut_saving - 0.536).abs() < 0.005);
        let text = t.to_text().to_ascii();
        assert!(text.contains("232256"));
        assert!(text.contains("Available resources"));
    }

    #[test]
    fn table2_has_six_columns_in_paper_order() {
        let cols = table2(&evaluator());
        let labels: Vec<&str> = cols.iter().map(|c| c.label.as_str()).collect();
        assert_eq!(labels, vec!["[12]", "[3]", "[3]a", "Ours 2,3", "Ours 3,3", "Ours 4,3"]);
    }

    #[test]
    fn our_columns_reproduce_paper_latency_and_throughput() {
        let cols = table2(&evaluator());
        let expect: [(&str, [f64; 5], f64, f64, f64); 3] = [
            ("Ours 2,3", [6.25, 8.96, 14.94, 14.94, 4.48], 49.57, 619.2, 0.90),
            ("Ours 3,3", [4.27, 6.12, 10.19, 10.19, 3.06], 33.83, 907.2, 1.29),
            ("Ours 4,3", [3.54, 5.07, 8.45, 8.45, 2.54], 28.05, 1094.3, 1.60),
        ];
        for (label, conv, overall, gops, eff) in expect {
            let col = cols.iter().find(|c| c.label == label).expect("column exists");
            for (got, want) in col.conv_ms.iter().zip(&conv) {
                assert!((got - want).abs() < 0.01, "{label}: {got} vs {want}");
            }
            assert!((col.overall_ms - overall).abs() < 0.03, "{label} overall");
            assert!((col.throughput_gops - gops).abs() < 2.0, "{label} throughput");
            assert!((col.mult_efficiency - eff).abs() < 0.01, "{label} mult eff");
        }
    }

    #[test]
    fn our_powers_are_modelled_near_paper_values() {
        let cols = table2(&evaluator());
        for (label, watts) in [("Ours 2,3", 13.03), ("Ours 3,3", 23.96), ("Ours 4,3", 36.32)] {
            let col = cols.iter().find(|c| c.label == label).expect("column exists");
            assert_eq!(col.power_provenance, Provenance::Computed);
            let rel = (col.power_w - watts).abs() / watts;
            assert!(rel < 0.03, "{label}: modelled {:.2} W vs paper {watts} W", col.power_w);
        }
    }

    #[test]
    fn headline_power_efficiency_improvement() {
        // Abstract: "1.44x improvement in power-efficiency" — ours m=2 vs
        // the normalized [3]a at the same throughput. The paper's own
        // efficiency row (41.34 vs 28.66) encodes 1.44x; our modelled
        // power for m=2 lands within the paper's two self-inconsistent
        // values (13.03 W printed, 14.98 W implied), bracketing the
        // improvement between 1.44x and 1.66x.
        let cols = table2(&evaluator());
        let ours = cols.iter().find(|c| c.label == "Ours 2,3").expect("exists");
        let podili_a = cols.iter().find(|c| c.label == "[3]a").expect("exists");
        let improvement = ours.power_efficiency / podili_a.power_efficiency;
        assert!(
            (1.35..1.75).contains(&improvement),
            "power-efficiency improvement {improvement:.2} out of range"
        );
    }

    #[test]
    fn rendered_table_contains_key_numbers() {
        let text = table2_text(&table2(&evaluator())).to_ascii();
        assert!(text.contains("133.22"), "published [3] latency");
        assert!(text.contains("28.0"), "our m=4 latency");
        assert!(text.contains("1094"), "our m=4 throughput");
        assert!(text.contains("Precision"));
    }
}
