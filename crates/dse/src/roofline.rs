//! Roofline analysis — quantifying the paper's bandwidth assumption.
//!
//! Sec. V-B assumes "double buffering is employed … and enough memory
//! bandwidth is available". This module computes, per layer and design
//! point, the data traffic, arithmetic intensity and the bandwidth at
//! which that assumption actually holds, in the classic roofline
//! formulation: `attainable = min(peak, AI × bandwidth)`.

use crate::DesignPoint;
use std::fmt;
use wino_core::{spatial_ops, ConvShape, Workload};

/// An external memory system feeding the engine's buffers.
#[derive(Debug, Clone, PartialEq)]
pub struct MemorySystem {
    /// Human-readable name.
    pub name: &'static str,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: f64,
}

/// Single-channel DDR3-1600 (12.8 GB/s) — typical for the paper's
/// generation of FPGA boards (the VC707 carries two such channels).
pub fn ddr3_1600() -> MemorySystem {
    MemorySystem { name: "DDR3-1600 x1", bandwidth_bytes_per_sec: 12.8e9 }
}

/// Dual-channel DDR3-1600 (25.6 GB/s) — the VC707's full complement.
pub fn ddr3_1600_x2() -> MemorySystem {
    MemorySystem { name: "DDR3-1600 x2", bandwidth_bytes_per_sec: 25.6e9 }
}

/// Off-chip traffic of one layer through the engine's buffers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LayerTraffic {
    /// Input feature-map bytes fetched.
    pub input_bytes: f64,
    /// Transformed-kernel bytes loaded into the V buffers.
    pub kernel_bytes: f64,
    /// Output feature-map bytes written.
    pub output_bytes: f64,
    /// Spatial-equivalent operations (the GOPS numerator).
    pub ops: f64,
}

impl LayerTraffic {
    /// Total bytes moved.
    pub fn total_bytes(&self) -> f64 {
        self.input_bytes + self.kernel_bytes + self.output_bytes
    }

    /// Arithmetic intensity in ops/byte.
    pub fn arithmetic_intensity(&self) -> f64 {
        self.ops / self.total_bytes()
    }
}

/// Computes one layer's traffic for a design point.
///
/// `line_buffered = true` models the image buffer of Fig. 7: overlapping
/// tiles are served on chip and every input pixel crosses the memory
/// interface once. `false` models a naive tiler that refetches the full
/// `(m+r−1)²` window per tile — the factor the line buffer saves.
pub fn layer_traffic(
    shape: &ConvShape,
    point: &DesignPoint,
    batch: usize,
    line_buffered: bool,
) -> LayerTraffic {
    let bytes = 4.0; // fp32 datapath
    let n_tile = point.params.input_tile();
    let m = point.params.m();
    let tiles = (shape.out_h().div_ceil(m) * shape.out_w().div_ceil(m)) as f64 * batch as f64;
    let input_bytes = if line_buffered {
        (batch * shape.h * shape.w * shape.c) as f64 * bytes
    } else {
        tiles * (n_tile * n_tile * shape.c) as f64 * bytes
    };
    // The V buffers hold transformed kernels: K*C tiles of n^2 words per
    // image pass (kernel groups reload once per image).
    let kernel_bytes = (batch * shape.k * shape.c * n_tile * n_tile) as f64 * bytes;
    let output_bytes = (batch as f64) * (shape.out_h() * shape.out_w() * shape.k) as f64 * bytes;
    LayerTraffic { input_bytes, kernel_bytes, output_bytes, ops: spatial_ops(batch, shape) as f64 }
}

/// Roofline verdict for one layer on one design point.
#[derive(Debug, Clone, PartialEq)]
pub struct RooflinePoint {
    /// Layer name.
    pub layer: String,
    /// Arithmetic intensity (ops/byte).
    pub intensity: f64,
    /// Engine peak in GOPS (Eq. 10's steady-state rate).
    pub peak_gops: f64,
    /// min(peak, AI·BW) in GOPS.
    pub attainable_gops: f64,
    /// `true` when the layer is compute-bound on this memory system.
    pub compute_bound: bool,
    /// Bandwidth (bytes/s) needed to keep the engine at peak.
    pub required_bandwidth: f64,
}

impl fmt::Display for RooflinePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: AI={:.1} ops/B, peak={:.0} GOPS, attainable={:.0} GOPS ({}), needs {:.1} GB/s",
            self.layer,
            self.intensity,
            self.peak_gops,
            self.attainable_gops,
            if self.compute_bound { "compute-bound" } else { "memory-bound" },
            self.required_bandwidth / 1e9,
        )
    }
}

/// Engine peak throughput in GOPS: `2·r²·m²·P·f` spatial-equivalent ops
/// per second (the steady-state limit of Eq. 9–10).
pub fn peak_gops(point: &DesignPoint) -> f64 {
    let m = point.params.m() as f64;
    let r = point.params.r() as f64;
    2.0 * r * r * m * m * point.pe_count as f64 * point.freq_hz / 1e9
}

/// Runs the roofline over a workload.
///
/// ```
/// use wino_core::WinogradParams;
/// use wino_dse::{ddr3_1600_x2, roofline, DesignPoint};
/// use wino_fpga::Architecture;
/// use wino_models::vgg16d;
///
/// let point = DesignPoint::with_mult_budget(
///     WinogradParams::new(4, 3)?,
///     Architecture::SharedTransform,
///     700,
///     200e6,
/// );
/// let points = roofline(&vgg16d(1), &point, &ddr3_1600_x2(), true);
/// // The low-arithmetic-intensity edges — conv1_1 (3 input channels)
/// // and the 14x14 conv5 group — are memory-bound on dual DDR3-1600;
/// // the nine-layer body keeps the engine compute-bound.
/// assert!(!points[0].compute_bound);
/// assert_eq!(points.iter().filter(|p| p.compute_bound).count(), 9);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn roofline(
    workload: &Workload,
    point: &DesignPoint,
    memory: &MemorySystem,
    line_buffered: bool,
) -> Vec<RooflinePoint> {
    let peak = peak_gops(point);
    workload
        .layers()
        .iter()
        .map(|layer| {
            let traffic = layer_traffic(&layer.shape, point, workload.batch(), line_buffered);
            let ai = traffic.arithmetic_intensity();
            let bw_limited = ai * memory.bandwidth_bytes_per_sec / 1e9;
            RooflinePoint {
                layer: layer.name.clone(),
                intensity: ai,
                peak_gops: peak,
                attainable_gops: peak.min(bw_limited),
                compute_bound: bw_limited >= peak,
                required_bandwidth: peak * 1e9 / ai,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use wino_core::WinogradParams;
    use wino_fpga::Architecture;
    use wino_models::vgg16d;

    fn paper_point() -> DesignPoint {
        DesignPoint {
            params: WinogradParams::new(4, 3).unwrap(),
            arch: Architecture::SharedTransform,
            pe_count: 19,
            freq_hz: 200e6,
            pipeline_depth: 8,
        }
    }

    #[test]
    fn peak_matches_table2_throughput() {
        // Steady-state peak for the m=4/19-PE design: 2*9*16*19*0.2 =
        // 1094.4 GOPS — exactly the Table II throughput (pipeline fill is
        // negligible over VGG16-D).
        assert!((peak_gops(&paper_point()) - 1094.4).abs() < 0.01);
    }

    #[test]
    fn middle_layers_are_compute_bound_boundary_layers_are_not() {
        // The interesting (and honest) finding this module surfaces: at
        // the m=4 design's 1094 GOPS peak, dual-channel DDR3 keeps the
        // reuse-rich middle of VGG16-D compute-bound, but conv1_1
        // (output-write dominated, C=3) and the conv5 group (V-buffer
        // traffic dominated, 14x14 maps) need more than 25.6 GB/s — the
        // paper's "enough memory bandwidth" assumption is a real design
        // requirement, quantified here at ~85 GB/s worst case.
        let wl = vgg16d(1);
        let points = roofline(&wl, &paper_point(), &ddr3_1600_x2(), true);
        let by_name = |n: &str| points.iter().find(|p| p.layer == n).unwrap();
        for layer in ["conv2_2", "conv3_2", "conv4_2"] {
            assert!(by_name(layer).compute_bound, "{}", by_name(layer));
        }
        let conv1_1 = by_name("conv1_1");
        assert!(!conv1_1.compute_bound, "{conv1_1}");
        assert!(
            (70e9..100e9).contains(&conv1_1.required_bandwidth),
            "conv1_1 needs ~85 GB/s, got {:.1} GB/s",
            conv1_1.required_bandwidth / 1e9
        );
        // Attainable never exceeds peak.
        for p in &points {
            assert!(p.attainable_gops <= p.peak_gops + 1e-9);
        }
    }

    #[test]
    fn naive_tiling_inflates_required_bandwidth_on_input_heavy_layers() {
        // conv1_2 (224x224x64, input/output symmetric): refetching the
        // 6x6 window per 4x4 tile raises its bandwidth requirement by
        // the refetch factor on the input share.
        let wl = vgg16d(1);
        let line = roofline(&wl, &paper_point(), &ddr3_1600(), true);
        let naive = roofline(&wl, &paper_point(), &ddr3_1600(), false);
        let pick = |ps: &[RooflinePoint], n: &str| {
            ps.iter().find(|p| p.layer == n).unwrap().required_bandwidth
        };
        let ratio = pick(&naive, "conv1_2") / pick(&line, "conv1_2");
        assert!(ratio > 1.3, "naive tiling must need more bandwidth, got {ratio:.2}x");
    }

    #[test]
    fn line_buffering_reduces_input_traffic() {
        let shape = wino_core::ConvShape::same_padded(56, 56, 64, 64, 3);
        let with = layer_traffic(&shape, &paper_point(), 1, true);
        let without = layer_traffic(&shape, &paper_point(), 1, false);
        assert!(with.input_bytes < without.input_bytes);
        assert_eq!(with.kernel_bytes, without.kernel_bytes);
        assert_eq!(with.output_bytes, without.output_bytes);
        // F(4,3): 6x6 tile per 4x4 outputs -> (6/4)^2 = 2.25x refetch.
        let ratio = without.input_bytes / with.input_bytes;
        assert!((ratio - 2.25).abs() < 0.15, "got {ratio}");
    }

    #[test]
    fn intensity_grows_with_depth() {
        // Later VGG layers do more ops per byte (more channels to
        // amortize the feature map against).
        let wl = vgg16d(1);
        let points = roofline(&wl, &paper_point(), &ddr3_1600(), true);
        let first = points.iter().find(|p| p.layer == "conv1_1").unwrap();
        let mid = points.iter().find(|p| p.layer == "conv3_2").unwrap();
        assert!(mid.intensity > first.intensity);
    }

    #[test]
    fn required_bandwidth_is_consistent() {
        let wl = vgg16d(1);
        let mem = ddr3_1600();
        for p in roofline(&wl, &paper_point(), &mem, true) {
            // At exactly the required bandwidth, attainable == peak.
            let at_required = p.intensity * p.required_bandwidth / 1e9;
            assert!((at_required - p.peak_gops).abs() / p.peak_gops < 1e-9, "{p}");
        }
    }
}
