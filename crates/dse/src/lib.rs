//! # wino-dse
//!
//! Design space exploration and experiment regeneration for the
//! `winofpga` reproduction of Ahmad & Pasha (DATE 2019).
//!
//! * [`DesignPoint`] / [`Evaluator`] / [`Metrics`] — evaluate any
//!   `F(m×m, r×r)` engine configuration on a workload + device using the
//!   paper's analytical models (Eqs. 4–10) and the calibrated resource /
//!   power models of [`wino_fpga`];
//! * [`sweep_m`] / [`pareto_front`] / [`best_design`] — the exploration
//!   loop that re-derives the paper's conclusions (m = 4 for throughput,
//!   m = 2 for power efficiency, m ≥ 5 never pays);
//! * [`figures`](mod@crate::figures) / [`tables`](mod@crate::tables) —
//!   generators for every figure and table of the paper, with the
//!   published values embedded for side-by-side comparison;
//! * [`qiu_fpga16`] / [`podili_asap17`] / [`podili_normalized`] — the
//!   published numbers of Qiu et al. \[12\] and Podili et al. \[3\],
//!   carried as cited constants.
//!
//! ```
//! use wino_dse::{best_design, Evaluator, Objective};
//! use wino_fpga::virtex7_485t;
//! use wino_models::vgg16d;
//!
//! let evaluator = Evaluator::new(vgg16d(1), virtex7_485t());
//! let (point, metrics) =
//!     best_design(&evaluator, &[2, 3, 4], 3, 700, 200e6, Objective::Throughput)
//!         .expect("a design fits");
//! assert_eq!(point.params.m(), 4); // the paper's chosen design
//! assert!(metrics.throughput_gops > 1000.0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod algorithms;
mod baselines;
mod explore;
pub mod figures;
mod mapping;
mod point;
mod render;
pub mod roofline;
pub mod tables;

pub use algorithms::fft_context_latency_seconds;
pub use baselines::{podili_asap17, podili_normalized, qiu_fpga16, BaselineRecord, Provenance};
pub use explore::{best_design, pareto_front, sweep_m, Objective};
pub use figures::{fig1, fig2, fig3, fig6, transform_ops_series, SeriesFigure};
pub use mapping::{map_workload, winograd_eligible, LayerTarget, MappedLayer, WorkloadMapping};
pub use point::{CachedEvaluator, DesignKey, DesignPoint, Evaluator, Metrics};
pub use render::{fmt_f, TextTable};
pub use roofline::{
    ddr3_1600, ddr3_1600_x2, layer_traffic, peak_gops, roofline, LayerTraffic, MemorySystem,
    RooflinePoint,
};
pub use tables::{table1, table2, table2_text, Table1, Table2Column};
