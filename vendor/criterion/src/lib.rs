//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! The build environment has no network access to crates.io, so this
//! crate implements the subset of Criterion's API the workspace's
//! benches use — `criterion_group!`/`criterion_main!`, benchmark groups
//! with `sample_size`/`measurement_time`, `bench_function`,
//! `bench_with_input`, and `Bencher::iter` — backed by a plain
//! `Instant`-based timing loop that prints median/mean per iteration.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id `function/parameter`.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: format!("{function}/{parameter}") }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId { label: parameter.to_string() }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.label)
    }
}

/// Drives the timing loop for one benchmark.
pub struct Bencher {
    samples: usize,
    measurement_time: Duration,
    /// Per-sample mean nanoseconds, filled by [`Bencher::iter`].
    results_ns: Vec<f64>,
}

impl Bencher {
    /// Times `routine`, first warming up, then collecting samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up and batch-size calibration: aim each sample at roughly
        // measurement_time / samples.
        let calibration = Instant::now();
        let mut calibration_iters = 0u64;
        while calibration.elapsed() < Duration::from_millis(20) {
            black_box(routine());
            calibration_iters += 1;
        }
        let per_iter = calibration.elapsed().as_secs_f64() / calibration_iters as f64;
        let target = self.measurement_time.as_secs_f64() / self.samples as f64;
        let batch = ((target / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

        self.results_ns.clear();
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_secs_f64();
            self.results_ns.push(elapsed * 1e9 / batch as f64);
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
    samples: usize,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of samples collected per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples.max(2);
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, time: Duration) -> &mut Self {
        self.measurement_time = time;
        self
    }

    fn run(&mut self, label: String, f: impl FnOnce(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.samples,
            measurement_time: self.measurement_time,
            results_ns: Vec::new(),
        };
        f(&mut bencher);
        let mut sorted = bencher.results_ns.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = sorted.get(sorted.len() / 2).copied().unwrap_or(f64::NAN);
        let mean = if sorted.is_empty() {
            f64::NAN
        } else {
            sorted.iter().sum::<f64>() / sorted.len() as f64
        };
        println!(
            "{}/{:<40} median {:>12.1} ns/iter  mean {:>12.1} ns/iter  ({} samples)",
            self.name,
            label,
            median,
            mean,
            sorted.len()
        );
    }

    /// Benchmarks `f` under `id`.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run(id.to_string(), f);
        self
    }

    /// Benchmarks `f` with an explicit input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        self.run(id.to_string(), |b| f(b, input));
        self
    }

    /// Ends the group (printing happens as benches run).
    pub fn finish(&mut self) {}
}

/// Top-level benchmark context.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
            samples: 10,
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let mut group = self.benchmark_group("bench");
        group.bench_function(id, f);
        self
    }
}

/// Declares a group-runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from group-runner functions.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(criterion: &mut Criterion) {
        let mut group = criterion.benchmark_group("shim");
        group.sample_size(3).measurement_time(Duration::from_millis(50));
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("sum_to", 50), &50u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn harness_runs() {
        sample_bench(&mut Criterion::default());
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("f", 3).to_string(), "f/3");
        assert_eq!(BenchmarkId::from_parameter("x").to_string(), "x");
    }
}
