//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! The build environment has no network access to crates.io, so this
//! crate re-implements the small slice of proptest's API the workspace
//! uses: the [`proptest!`] macro, range / tuple / `prop_map` / `vec` /
//! `select` strategies, and the `prop_assert*` family. Cases are drawn
//! from a deterministic SplitMix64 stream seeded per test name, so runs
//! are reproducible; there is no shrinking.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 generator driving every strategy.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a over the bytes).
    pub fn for_test(name: &str) -> TestRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: h ^ 0x9E37_79B9_7F4A_7C15 }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 128-bit value.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Outcome of one generated case.
#[derive(Debug)]
pub enum TestCaseError {
    /// An assertion failed; the message explains why.
    Fail(String),
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject,
}

/// Runner configuration (only `cases` is honoured).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs `cases` accepted cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Types with a canonical whole-domain strategy (only what the workspace
/// needs).
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> u64 {
        rng.next_u64()
    }
}

/// Whole-domain strategy for `T` (proptest's `any::<T>()`).
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy(std::marker::PhantomData)
}

/// Strategy returned by [`any`].
pub struct AnyStrategy<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = rng.next_u128() % span;
                ((self.start as i128) + offset as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128).wrapping_sub(lo as i128) as u128 + 1;
                let offset = rng.next_u128() % span;
                ((lo as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for Range<i128> {
    type Value = i128;
    fn sample(&self, rng: &mut TestRng) -> i128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end.wrapping_sub(self.start) as u128;
        self.start.wrapping_add((rng.next_u128() % span) as i128)
    }
}

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+);)*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A);
    (A, B);
    (A, B, C);
    (A, B, C, D);
    (A, B, C, D, E);
    (A, B, C, D, E, G);
    (A, B, C, D, E, G, H);
    (A, B, C, D, E, G, H, I);
    (A, B, C, D, E, G, H, I, J);
    (A, B, C, D, E, G, H, I, J, K);
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Fixed-length `Vec` strategy.
    pub struct VecStrategy<S> {
        element: S,
        len: usize,
    }

    /// Generates `Vec`s of exactly `len` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, len: usize) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            (0..self.len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies (`prop::sample`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed list.
    pub struct Select<T: Clone> {
        options: Vec<T>,
    }

    /// Chooses uniformly among `options`.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select requires at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn sample(&self, rng: &mut TestRng) -> T {
            self.options[(rng.next_u64() % self.options.len() as u64) as usize].clone()
        }
    }
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::TestCaseError::Fail(format!(
                "{} at {}:{}",
                format!($($fmt)+),
                file!(),
                line!()
            )));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} (left: {:?}, right: {:?}) at {}:{}",
                stringify!($left),
                stringify!($right),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return Err($crate::TestCaseError::Fail(format!(
                "{} (left: {:?}, right: {:?}) at {}:{}",
                format!($($fmt)+),
                l,
                r,
                file!(),
                line!()
            )));
        }
    }};
}

/// Skips the current case when its inputs are unsuitable.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return Err($crate::TestCaseError::Reject);
        }
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { .. }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let strategy = ($($strat,)*);
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < config.cases {
                    attempts += 1;
                    assert!(
                        attempts < config.cases.saturating_mul(64).max(1024),
                        "proptest: too many rejected cases in {}",
                        stringify!($name)
                    );
                    let ($($arg,)*) = $crate::Strategy::sample(&strategy, &mut rng);
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::TestCaseError::Reject) => continue,
                        Err($crate::TestCaseError::Fail(msg)) => {
                            panic!("proptest case failed: {msg}")
                        }
                    }
                }
            }
        )*
    };
}

/// Everything a property-test file needs.
pub mod prelude {
    /// The crate root, so `prop::collection::vec(..)` paths resolve.
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assume, proptest, Arbitrary, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn ranges_stay_in_bounds(x in -50i128..50, y in 1usize..9, z in -2.0f32..2.0) {
            prop_assert!((-50..50).contains(&x));
            prop_assert!((1..9).contains(&y));
            prop_assert!((-2.0..2.0).contains(&z));
        }

        #[test]
        fn map_and_assume_work(v in (0u64..100).prop_map(|n| n * 2)) {
            prop_assume!(v != 0);
            prop_assert_eq!(v % 2, 0);
        }

        #[test]
        fn collection_and_select(
            xs in prop::collection::vec(0i32..5, 7),
            pick in prop::sample::select(vec![3usize, 5]),
        ) {
            prop_assert_eq!(xs.len(), 7);
            prop_assert!(pick == 3 || pick == 5);
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
