//! Heterogeneous per-layer design space exploration on VGG16-D — the
//! `wino-search` subsystem end to end.
//!
//! The paper selects a single `F(m×m, 3×3)` for the whole network
//! (m = 4 on its Virtex-7). Here every layer picks its own output-tile
//! size and PE allocation, the space is searched with all four
//! strategies, and the result is compared against the paper's
//! homogeneous design: the per-layer optimum must match or beat it,
//! because the homogeneous design is one corner of the per-layer space.
//!
//! ```sh
//! cargo run --release --example heterogeneous_dse
//! ```

use winofpga::prelude::*;

fn paper_baseline(evaluator: &Evaluator) -> Metrics {
    let point = DesignPoint::with_mult_budget(
        WinogradParams::new(4, 3).expect("valid"),
        Architecture::SharedTransform,
        700,
        200e6,
    );
    evaluator.evaluate(&point)
}

fn main() {
    let evaluator = Evaluator::new(vgg16d(1), virtex7_485t());
    let baseline = paper_baseline(&evaluator);
    println!("==================== VGG16-D x Virtex-7 485T ====================");
    println!(
        "paper's homogeneous F(4x4, 3x3) x19 PEs: {:.2} ms, {:.1} GOPS, {:.2} GOPS/W\n",
        baseline.total_latency_ms, baseline.throughput_gops, baseline.power_efficiency
    );

    // Each of VGG16-D's 13 layers picks m in {2, 3, 4} and an allocation
    // in {50%, 100%} of the 700-multiplier budget: 6^13 ~ 1.3e10 designs,
    // far beyond enumeration — the reason search strategies are pluggable.
    let space = HeterogeneousSpace::new(&evaluator, vec![2, 3, 4], vec![0.5, 1.0], 700, 200e6);
    println!(
        "heterogeneous space: {} eligible layers, {} dims, {:.3e} designs",
        space.eligible_layers(),
        space.dims(),
        space.size() as f64
    );

    let greedy = Greedy::default();
    let annealing = SimulatedAnnealing::default();
    let genetic = Genetic::default();
    let strategies: Vec<&dyn Strategy> = vec![&greedy, &annealing, &genetic];
    let (outcomes, archive, cache) =
        compare_strategies(&space, &strategies, SearchObjective::Throughput);

    println!(
        "\n{:<22} {:>12} {:>12} {:>10} {:>10}",
        "strategy", "evaluations", "latency(ms)", "GOPS", "GOPS/W"
    );
    for outcome in &outcomes {
        if let Some((_, best)) = &outcome.best {
            println!(
                "{:<22} {:>12} {:>12.2} {:>10.1} {:>10.2}",
                outcome.strategy,
                outcome.evaluations,
                best.latency_ms,
                best.throughput_gops,
                best.power_efficiency
            );
        }
    }
    println!(
        "\nshared evaluation cache: {} distinct designs, {} hits / {} misses",
        cache.len(),
        cache.hits(),
        cache.misses()
    );

    let best = outcomes
        .iter()
        .filter_map(|o| o.best.as_ref())
        .max_by(|(_, a), (_, b)| a.throughput_gops.total_cmp(&b.throughput_gops))
        .expect("some strategy found a feasible design");
    println!(
        "\nbest heterogeneous design: {:.2} ms, {:.1} GOPS ({:+.2}% vs paper)",
        best.1.latency_ms,
        best.1.throughput_gops,
        (best.1.throughput_gops / baseline.throughput_gops - 1.0) * 100.0
    );
    assert!(
        best.1.throughput_gops >= baseline.throughput_gops - 1e-9,
        "the homogeneous design is a corner of this space"
    );
    if let Some(designs) = space.layer_designs(&best.0) {
        println!("\nper-layer tile selection of the best design:");
        for d in designs {
            println!(
                "  {:<10} {} x{:<3} PEs  {:>8.3} ms",
                d.layer, d.algo, d.pe_count, d.latency_ms
            );
        }
    }

    println!("\nPareto archive across all strategies ({} designs):", archive.len());
    for entry in archive.entries().iter().take(8) {
        println!("  {}", entry.evaluation);
    }
    if archive.len() > 8 {
        println!("  ... and {} more", archive.len() - 8);
    }

    // The same machinery on an enumerable space: exhaustive over the
    // paper's homogeneous sweep, for cross-validation.
    let homogeneous = HomogeneousSpace::new(&evaluator, vec![2, 3, 4], 3, 700, 200e6);
    let exhaustive = Exhaustive::default();
    let strategies: Vec<&dyn Strategy> = vec![&exhaustive, &greedy, &annealing, &genetic];
    let (outcomes, _, _) =
        compare_strategies(&homogeneous, &strategies, SearchObjective::Throughput);
    println!("\nhomogeneous m in {{2,3,4}} cross-check (all strategies must agree):");
    for outcome in &outcomes {
        println!(
            "  {:<22} best {:.1} GOPS",
            outcome.strategy,
            outcome.best_score(SearchObjective::Throughput)
        );
    }
}
