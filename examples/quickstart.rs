//! Quickstart: generate a Winograd algorithm, convolve an image, and see
//! why the paper cares.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use winofpga::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // --- 1. Generate F(2x2, 3x3) exactly and show the matrices. --------
    let params = WinogradParams::new(2, 3)?;
    let set = TransformSet::generate(params)?;
    println!("{set}");
    println!(
        "F(2,3) does {} multiplications per 2-D tile; direct convolution needs {}.\n",
        params.mults_per_tile_2d(),
        params.spatial_mults_per_tile_2d()
    );

    // --- 2. Convolve a small image and check against direct conv. ------
    let mut rng = SplitMix64::new(2019);
    let input = Tensor4::from_fn(Shape4 { n: 1, c: 3, h: 16, w: 16 }, |_, _, _, _| {
        rng.uniform_f32(-1.0, 1.0)
    });
    let kernels = Tensor4::from_fn(Shape4 { n: 8, c: 3, h: 3, w: 3 }, |_, _, _, _| {
        rng.uniform_f32(-0.5, 0.5)
    });
    let algo = WinogradAlgorithm::<f32>::new(&set);
    let fast = algo.convolve_layer(&input, &kernels, 1);
    let exact = spatial_convolve(&input, &kernels, 1);
    let stats = ErrorStats::between(fast.as_slice(), exact.as_slice());
    println!("Winograd vs direct convolution on a 16x16x3 -> 8 layer: {stats}\n");

    // --- 3. The paper's question: which m is best on a real FPGA? ------
    let evaluator = Evaluator::new(vgg16d(1), virtex7_485t());
    println!("Sweeping F(m x m, 3x3) on {} for VGG16-D:", evaluator.device());
    println!(
        "{:<14} {:>4} {:>7} {:>12} {:>10} {:>9} {:>9}",
        "design", "PEs", "mults", "latency(ms)", "GOPS", "W", "GOPS/W"
    );
    for (point, metrics) in sweep_m(&evaluator, &[1, 2, 3, 4, 5, 6], 3, 700, 200e6) {
        println!(
            "{:<14} {:>4} {:>7} {:>12.2} {:>10.1} {:>9.2} {:>9.2}{}",
            point.params.to_string(),
            point.pe_count,
            point.multipliers(),
            metrics.total_latency_ms,
            metrics.throughput_gops,
            metrics.power_w,
            metrics.power_efficiency,
            if metrics.fits_device { "" } else { "  (does not fit!)" },
        );
    }

    let (best, metrics) = best_design(&evaluator, &[2, 3, 4], 3, 700, 200e6, Objective::Throughput)
        .expect("a design fits");
    println!(
        "\nBest feasible throughput design: {best} -> {:.1} GOPS, {:.2} ms for VGG16-D",
        metrics.throughput_gops, metrics.total_latency_ms
    );
    println!("(The paper's Table II reports 1094.3 GOPS / 28.05 ms for the same design.)");
    Ok(())
}
