//! Cycle-level simulation of the proposed engine (Fig. 7) on a
//! VGG16-style layer, cross-checked against the paper's Eq. 9 and against
//! direct convolution.
//!
//! ```sh
//! cargo run --release --example engine_sim
//! ```

use winofpga::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A channel-reduced VGG16 conv5-style layer (14x14 feature map). The
    // full 512x512 layer behaves identically per Eq. 9; 64x64 keeps the
    // cycle-by-cycle simulation quick.
    let (c, k) = (64usize, 64usize);
    let mut rng = SplitMix64::new(7);
    let input =
        Tensor4::from_fn(Shape4 { n: 1, c, h: 14, w: 14 }, |_, _, _, _| rng.uniform_f32(-1.0, 1.0));
    let kernels =
        Tensor4::from_fn(Shape4 { n: k, c, h: 3, w: 3 }, |_, _, _, _| rng.uniform_f32(-0.2, 0.2));
    let reference = spatial_convolve(&input, &kernels, 1);

    println!("Layer: 14x14x{c} -> {k} kernels 3x3 (conv5-style, channels reduced)\n");
    println!(
        "{:<14} {:>4} {:>10} {:>10} {:>8} {:>10} {:>12} {:>10}",
        "design", "PEs", "cycles", "Eq.9", "stalls", "PE util", "max|err|", "us @200MHz"
    );

    for (m, pes) in [(2usize, 43usize), (3, 28), (4, 19)] {
        let params = WinogradParams::new(m, 3)?;
        let engine = WinogradEngine::new(EngineConfig::proposed(params, pes))?;
        let (output, report) = engine.run_layer(&input, &kernels, 1);
        let stats = ErrorStats::between(output.as_slice(), reference.as_slice());
        let predicted = engine.predicted_cycles(input.shape(), k, 1);
        println!(
            "{:<14} {:>4} {:>10} {:>10} {:>8} {:>9.1}% {:>12.2e} {:>10.1}",
            params.to_string(),
            pes,
            report.cycles,
            predicted,
            report.stall_cycles,
            report.pe_utilization * 100.0,
            stats.max_abs,
            report.latency_seconds(200e6) * 1e6,
        );
        assert_eq!(report.cycles, predicted, "simulator must agree with Eq. 9");
        assert!(stats.within_abs(1e-3), "simulator must agree with direct convolution");
    }

    // Bandwidth sensitivity: the paper assumes "enough memory bandwidth";
    // here is what happens when the kernel buffers get less than that.
    println!("\nKernel-load bandwidth sensitivity, F(4x4,3x3) with 19 PEs:");
    println!("{:>18} {:>10} {:>8} {:>10}", "bytes/cycle", "cycles", "stalls", "slowdown");
    let params = WinogradParams::new(4, 3)?;
    let base = WinogradEngine::new(EngineConfig::proposed(params, 19))?;
    let (_, ideal) = base.run_layer(&input, &kernels, 1);
    for bw in [f64::INFINITY, 1024.0, 256.0, 64.0, 16.0] {
        let mut config = EngineConfig::proposed(params, 19);
        config.kernel_bandwidth = bw;
        let engine = WinogradEngine::new(config)?;
        let (_, report) = engine.run_layer(&input, &kernels, 1);
        println!(
            "{:>18} {:>10} {:>8} {:>9.2}x",
            if bw.is_finite() { format!("{bw:.0}") } else { "unlimited".to_owned() },
            report.cycles,
            report.stall_cycles,
            report.cycles as f64 / ideal.cycles as f64,
        );
    }
    println!(
        "\n(double buffering hides kernel loads down to {:.0} bytes/cycle on this layer)",
        ideal.required_bandwidth
    );
    Ok(())
}
