//! From design space exploration to running silicon-free "hardware":
//! search a heterogeneous VGG16-D design with `wino-search`, lower it to
//! a `wino-exec` schedule, execute the network thread-parallel, and
//! verify every layer against the spatial oracle.
//!
//! ```sh
//! cargo run --release --example exec_network
//! ```

use winofpga::prelude::*;

fn main() {
    // 1. Search the heterogeneous per-layer space on the paper's
    //    workload and device (analytical models — full-scale is cheap).
    let full = vgg16d(1);
    let evaluator = Evaluator::new(full.clone(), virtex7_485t());
    let space = HeterogeneousSpace::new(&evaluator, vec![2, 3, 4], vec![0.5, 1.0], 700, 200e6);
    let cache = EvalCache::new();
    let mut archive = ParetoArchive::new();
    let outcome =
        Greedy::default().search(&space, &cache, SearchObjective::Throughput, &mut archive);
    let (genome, best) = outcome.best.expect("a feasible design exists");
    println!("best searched design: {best}");

    // 2. Lower the winning genome to an executable schedule.
    let designs = space.layer_designs(&genome).expect("valid genome");
    let schedule = Schedule::from_layer_designs(&full, &designs).expect("design lowers");
    println!("\n{schedule}");

    // 3. Execute a structurally identical reduced copy (the scalar
    //    oracle verification would dominate wall time at 224x224x512)
    //    and verify it layer by layer.
    let small = shrink(&full, 28, 32);
    let small_schedule = Schedule::from_layer_designs(&small, &designs).expect("design lowers");
    let threads = ExecConfig::default().threads;
    let exec = NetworkExecutor::new(small, small_schedule, ExecConfig::with_threads(threads))
        .expect("schedule validates");
    let report = exec.run();
    println!("{report}");

    match exec.verify(1e-3) {
        Ok(worst) => println!("oracle check passed: worst |deviation| = {worst:.3e}"),
        Err(e) => println!("oracle check FAILED: {e}"),
    }
}
