//! Fixed-point Winograd ablation — what the paper's fp32 choice buys.
//!
//! Qiu et al. [12] (the Table II baseline) run 16-bit fixed point; the
//! paper uses fp32 "for the sake of simplicity and high precision" and
//! leaves quantization unexplored. Because the whole pipeline is generic
//! over [`Scalar`], re-running it under Q-format arithmetic is one type
//! parameter away.
//!
//! ```sh
//! cargo run --release --example quantization
//! ```

use winofpga::core::{error_growth, WinogradAlgorithm, WinogradParams};
use winofpga::prelude::*;
use winofpga::tensor::Fixed;

fn run_quantized<const FRAC: u32>(
    input: &Tensor4<f32>,
    kernels: &Tensor4<f32>,
    reference: &Tensor4<f32>,
    m: usize,
) -> ErrorStats {
    let params = WinogradParams::new(m, 3).expect("valid params");
    let algo = WinogradAlgorithm::<Fixed<FRAC>>::for_params(params).expect("generates");
    let qi = input.map(Fixed::<FRAC>::from_f32);
    let qk = kernels.map(Fixed::<FRAC>::from_f32);
    let out = algo.convolve_layer(&qi, &qk, 1);
    let back: Vec<f32> = out.as_slice().iter().map(|q| q.to_f32()).collect();
    ErrorStats::between(&back, reference.as_slice())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SplitMix64::new(12);
    let input = Tensor4::from_fn(Shape4 { n: 1, c: 8, h: 16, w: 16 }, |_, _, _, _| {
        rng.uniform_f32(-1.0, 1.0)
    });
    let kernels = Tensor4::from_fn(Shape4 { n: 8, c: 8, h: 3, w: 3 }, |_, _, _, _| {
        rng.uniform_f32(-0.3, 0.3)
    });
    let reference = spatial_convolve(&input, &kernels, 1);

    println!("Winograd convolution accuracy vs fp64-accumulated direct convolution");
    println!("(16x16x8 -> 8 layer, inputs in [-1,1], weights in [-0.3,0.3])\n");
    println!(
        "{:<10} {:>14} {:>14} {:>14}",
        "tile m", "fp32 max|err|", "Q8.24 max|err|", "Q16.16 max|err|"
    );
    for m in [2usize, 3, 4, 6] {
        let params = WinogradParams::new(m, 3)?;
        let algo32 = WinogradAlgorithm::<f32>::for_params(params)?;
        let f32_out = algo32.convolve_layer(&input, &kernels, 1);
        let f32_stats = ErrorStats::between(f32_out.as_slice(), reference.as_slice());
        let q24 = run_quantized::<24>(&input, &kernels, &reference, m);
        let q16 = run_quantized::<16>(&input, &kernels, &reference, m);
        println!(
            "{:<10} {:>14.3e} {:>14.3e} {:>14.3e}",
            format!("F({m}x{m})"),
            f32_stats.max_abs,
            q24.max_abs,
            q16.max_abs
        );
    }

    println!("\nError growth with tile size (fp32 vs fp64 direct, single tiles):");
    println!("{:<6} {:>22} {:>14}", "m", "max transform entry", "max|err|");
    for point in error_growth(3, &[2, 3, 4, 5, 6, 7, 8], 256, 99) {
        println!(
            "{:<6} {:>22.1} {:>14.3e}",
            point.m, point.max_transform_entry, point.stats.max_abs
        );
    }
    println!("\nTakeaways: (1) in the paper's m = 2..4 range fp32 error is ~1e-6 — its");
    println!("\"high precision\" claim holds; (2) fixed point amplifies the transform's");
    println!("dynamic range, so a [12]-style 16-bit datapath degrades quickly as m grows;");
    println!("(3) error growth with m is driven by the transform matrix magnitudes.");
    Ok(())
}
