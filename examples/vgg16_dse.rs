//! Full design space exploration on VGG16-D — the paper's Sec. III and V
//! in one run, plus a Pareto view and two extra workloads (AlexNet,
//! ResNet-18) the paper does not cover.
//!
//! ```sh
//! cargo run --release --example vgg16_dse
//! ```

use winofpga::prelude::*;

fn explore(name: &str, workload: Workload) {
    println!("==================== {name} ====================");
    // The Winograd engine only runs stride-1 3x3 layers; everything else
    // (AlexNet's 11x11/5x5, ResNet's stride-2 entries) falls back to the
    // spatial path and is excluded from the sweep.
    let mut compatible = Workload::new(workload.name().to_owned(), workload.batch());
    for l in workload.layers() {
        if l.shape.winograd_compatible() && l.shape.r == 3 {
            compatible.push(l.name.clone(), l.group.clone(), l.shape);
        }
    }
    println!(
        "{} of {} conv layers are Winograd-compatible ({:.2} of {:.2} GOP per image)\n",
        compatible.layers().len(),
        workload.layers().len(),
        compatible.spatial_gop(),
        workload.spatial_gop()
    );

    let evaluator = Evaluator::new(compatible, virtex7_485t());
    let sweep = sweep_m(&evaluator, &[1, 2, 3, 4, 5, 6, 7], 3, 700, 200e6);

    println!(
        "{:<14} {:>4} {:>12} {:>10} {:>10} {:>9} {:>6}",
        "design", "PEs", "latency(ms)", "GOPS", "LUTs", "GOPS/W", "fits"
    );
    for (point, m) in &sweep {
        println!(
            "{:<14} {:>4} {:>12.2} {:>10.1} {:>10} {:>9.2} {:>6}",
            point.params.to_string(),
            point.pe_count,
            m.total_latency_ms,
            m.throughput_gops,
            m.resources.luts,
            m.power_efficiency,
            if m.fits_device { "yes" } else { "NO" },
        );
    }

    let front = pareto_front(&sweep);
    println!("\nPareto front (throughput vs power efficiency):");
    for (point, m) in &front {
        println!(
            "  {} -> {:.1} GOPS @ {:.2} GOPS/W",
            point.params, m.throughput_gops, m.power_efficiency
        );
    }

    for (objective, label) in [
        (Objective::Throughput, "throughput"),
        (Objective::PowerEfficiency, "power efficiency"),
        (Objective::MultiplierEfficiency, "multiplier efficiency"),
    ] {
        if let Some((point, m)) =
            best_design(&evaluator, &[1, 2, 3, 4, 5, 6], 3, 700, 200e6, objective)
        {
            println!(
                "best {label:<22} -> {} ({:.1} GOPS, {:.2} GOPS/W, {:.2} GOPS/mult)",
                point.params, m.throughput_gops, m.power_efficiency, m.mult_efficiency
            );
        }
    }
    println!();
}

fn main() {
    explore("VGG16-D (the paper's workload)", vgg16d(1));
    explore("AlexNet (3x3 layers only run on the Winograd engine)", alexnet(1));
    explore("ResNet-18 (stride-2 layers fall back to spatial)", resnet18(1));

    // End-to-end mapping with spatial fallback: the Amdahl view of the
    // paper's speedup on networks that are not all-3x3.
    use winofpga::core::TileModel;
    use winofpga::dse::map_workload;
    let point = DesignPoint {
        params: WinogradParams::new(4, 3).expect("valid"),
        arch: Architecture::SharedTransform,
        pe_count: 19,
        freq_hz: 200e6,
        pipeline_depth: 8,
    };
    println!("==================== End-to-end mapping, F(4x4,3x3) x19 PEs ====================");
    for wl in [vgg16d(1), alexnet(1), resnet18(1)] {
        let mapping = map_workload(&wl, &point, TileModel::Ceil);
        println!(
            "{:<10} -> {:.2} ms, {:.1}% of ops on the Winograd engine, {:.0} GOPS end-to-end",
            wl.name(),
            mapping.total_seconds() * 1e3,
            mapping.ops_coverage * 100.0,
            mapping.throughput_gops
        );
    }
    println!("\nNote: the sweeps above evaluate the 3x3 stride-1 subset the Winograd engine");
    println!("accelerates; the mapping lines include the spatial-fallback layers, which is");
    println!("why the paper picks the all-3x3 VGG16-D as its workload.");
}
