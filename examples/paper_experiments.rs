//! Regenerates every figure and table of the paper in one run.
//!
//! ```sh
//! cargo run --release --example paper_experiments
//! ```
//!
//! Each artifact is also available as a focused binary in `wino-bench`
//! (`cargo run -p wino-bench --bin fig1`, `--bin table2`, …).

use winofpga::core::CostModel;
use winofpga::dse::figures;
use winofpga::prelude::*;

fn main() {
    let wl = vgg16d(1);
    let device = virtex7_485t();
    let evaluator = Evaluator::new(wl.clone(), device.clone());

    println!("=== Fig. 1: multiplication complexity per VGG16-D group (x1e9) ===");
    println!("{}", fig1(&wl).to_table(3).to_ascii());

    println!("=== Fig. 2: net transform complexity (MFLOPs) ===");
    println!("{}", fig2(&wl, CostModel::ShiftFree).to_table(1).to_ascii());

    println!("=== Fig. 3: percentage variations of complexities ===");
    println!("{}", fig3(&wl, CostModel::ShiftFree).to_table(2).to_ascii());

    println!("=== Fig. 6: throughput vs method and multiplier budget (GOPS) ===");
    println!("{}", fig6(&wl, 200e6).to_table(2).to_ascii());

    println!("=== Table I: resource utilization, 19 PEs F(4x4,3x3) ===");
    let t1 = table1(&device);
    println!("{}", t1.to_text().to_ascii());
    println!("LUT saving vs [3]-based design: {:.1}% (paper: 53.6%)\n", t1.lut_saving * 100.0);

    println!("=== Table II: performance comparison for VGG16-D ===");
    println!("{}", table2_text(&table2(&evaluator)).to_ascii());

    println!("=== Sec. IV-C: transform overhead of the implementation ===");
    let ops = winofpga::core::TransformOps::LAVIN_F2X2_3X3;
    let p2 = WinogradParams::new(2, 3).expect("valid");
    println!(
        "F(2x2,3x3), P=16: ours {:.2}x vs [3] {:.2}x relative to spatial (paper: 1.5x / 2.33x)",
        winofpga::core::overhead_ratio_shared(p2, ops, 16.0),
        winofpga::core::overhead_ratio_per_pe(p2, ops),
    );

    println!("\n=== Derived β/γ/δ per cost model (the paper leaves these unpublished) ===");
    for model in [CostModel::Naive, CostModel::ShiftFree, CostModel::RowFactored] {
        println!("--- {model}");
        for (m, ops) in figures::transform_ops_series(model) {
            println!("  m={m}: {ops}");
        }
    }
}
