//! Three algorithm classes in one schedule — the pluggable backend
//! layer end to end.
//!
//! A mixed workload (an 11×11 large-kernel stem, a strided
//! downsampling layer, a bread-and-butter 3×3 layer) is searched over
//! the three-way per-layer algorithm space {spatial, `F(m×m)`,
//! `FFT(N)`}, the winning design lowers to a `wino-exec` schedule, and
//! a `NetworkExecutor` runs it — one network, three convolution
//! backends behind the same `ConvBackend` contract — then verifies
//! every layer against the scalar spatial oracle.
//!
//! ```sh
//! cargo run --release --example heterogeneous_algorithms
//! ```

use winofpga::prelude::*;

fn main() {
    // A workload that *needs* heterogeneity: no single algorithm is
    // right for all three layers.
    let mut wl = Workload::new("mixed-algorithms", 2);
    wl.push(
        "stem-11x11",
        "Stem",
        ConvShape { h: 32, w: 32, c: 8, k: 16, r: 11, stride: 1, pad: 5 },
    );
    wl.push(
        "down-3x3-s2",
        "Mid",
        ConvShape { h: 32, w: 32, c: 16, k: 16, r: 3, stride: 2, pad: 1 },
    );
    wl.push("conv-3x3", "Tail", ConvShape::same_padded(16, 16, 16, 32, 3));

    // Search the widened genome: each stride-1 layer picks one of
    // {spatial, F(2x2), F(4x4), FFT(16), FFT(32)} plus a PE allocation;
    // the strided layer is pinned to the spatial fallback.
    let evaluator = Evaluator::new(wl.clone(), virtex7_485t());
    let space = HeterogeneousSpace::new(&evaluator, vec![1, 2, 4], vec![1.0], 700, 200e6)
        .with_fft_sizes(vec![16, 32]);
    println!(
        "three-way algorithm space: {} eligible layers, {} dims, {} designs",
        space.eligible_layers(),
        space.dims(),
        space.size()
    );

    let cache = EvalCache::new();
    let mut archive = ParetoArchive::new();
    let outcome =
        Exhaustive::default().search(&space, &cache, SearchObjective::Latency, &mut archive);
    let (genome, best) = outcome.best.expect("the spatial fallback always fits");
    let designs = space.layer_designs(&genome).expect("best genome decodes");
    println!("\nminimum-latency design ({:.3} ms modeled):", best.latency_ms);
    for d in &designs {
        println!(
            "  {:<12} {:<10} x{:<3} PEs  {:>8.4} ms",
            d.layer,
            d.algo.to_string(),
            d.pe_count,
            d.latency_ms
        );
    }

    // The model must have chosen all three algorithm classes — that is
    // the point of the widened space on this workload.
    assert!(
        designs.iter().any(|d| matches!(d.algo, AlgorithmChoice::Fft { .. })),
        "the 11x11 stem should map to FFT"
    );
    assert!(
        designs.iter().any(|d| matches!(d.algo, AlgorithmChoice::Winograd(_))),
        "the 3x3 layer should map to Winograd"
    );
    assert!(
        designs.iter().any(|d| matches!(d.algo, AlgorithmChoice::Spatial)),
        "the strided layer must fall back to spatial"
    );

    // Lower to a schedule and run it: one executor, three backends.
    let schedule = Schedule::from_layer_designs(&wl, &designs).expect("design lowers");
    println!("\n{schedule}");
    let exec = NetworkExecutor::new(wl, schedule, ExecConfig::with_threads(2))
        .expect("schedule validates");
    let report = exec.run();
    println!("{report}");
    for i in 0..3 {
        println!("  layer {} runs engine {}", i, exec.engine_label(i));
    }

    // Every backend — FFT included — must agree with the scalar
    // spatial oracle.
    match exec.verify(1e-3) {
        Ok(worst) => println!("\noracle check passed: worst |deviation| = {worst:.3e}"),
        Err(e) => panic!("oracle check failed: {e}"),
    }
}
